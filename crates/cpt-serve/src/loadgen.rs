//! The load-generator client behind `cptgen loadgen`.
//!
//! Opens sessions against a running `cptgen serve` at a target rate and
//! drives them to completion, multiplexing many concurrently open
//! sessions per connection — a handful of client threads sustain
//! thousands of concurrent sessions, mirroring the server's own
//! no-thread-per-session design. Reports achieved throughput, shed
//! counts, and client-observed latency percentiles for the `open` and
//! `next` verbs.
//!
//! Transient-failure policy: connects are retried on `ECONNREFUSED` and
//! admission sheds (`overloaded`) are retried, both with capped, jittered
//! exponential backoff — a shed is the server asking for patience, not an
//! error. When a connection dies mid-run the thread reconnects and
//! presents its detach token (armed at connect time via the `detach`
//! verb), resuming its parked sessions where delivery stopped; only if
//! that fails are the sessions counted lost. Every retry, shed,
//! reconnect, and reattach is counted in the report.

#![deny(clippy::unwrap_used)]

use crate::error::ServeError;
use crate::metrics::{LatencyHistogram, StatsSnapshot};
use crate::protocol::wire;
use crate::protocol::{ErrorKind, Request, Response};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which codec the client speaks: JSON lines (the scriptable default) or
/// the negotiated binary framing of [`crate::protocol::wire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Line-delimited JSON (works against any server version).
    #[default]
    Json,
    /// Length-prefixed binary frames (negotiated by preamble).
    Bin,
}

impl std::str::FromStr for WireMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(WireMode::Json),
            "bin" => Ok(WireMode::Bin),
            other => Err(format!("unknown wire mode `{other}` (want json|bin)")),
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:9000`.
    pub addr: String,
    /// Total sessions to open (0 = unlimited; requires `duration`).
    pub sessions: u64,
    /// Target concurrently open sessions across all threads.
    pub concurrent: usize,
    /// Session opens per second across all threads (0 = as fast as
    /// possible).
    pub rate: f64,
    /// UE streams each session decodes.
    pub streams: usize,
    /// Client threads (each one connection, multiplexing its share of
    /// `concurrent`).
    pub threads: usize,
    /// Stop opening new sessions after this long.
    pub duration: Option<Duration>,
    /// Base session seed; session `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Hard cap on draining in-flight sessions after the open phase.
    pub drain_timeout: Duration,
    /// Send a `shutdown` verb to the server once done.
    pub shutdown: bool,
    /// Extra connect attempts on `ECONNREFUSED` before giving up.
    pub connect_retries: u32,
    /// Base backoff between retries (ms); grows exponentially with a
    /// deterministic jitter, capped at ~2 s.
    pub retry_backoff_ms: u64,
    /// Arm detach-on-disconnect and reattach after a dropped connection
    /// instead of abandoning the sessions.
    pub reattach: bool,
    /// Codec to speak: JSON lines or negotiated binary frames.
    pub wire: WireMode,
}

impl LoadgenConfig {
    /// Defaults: 100 sessions, 32 concurrent, unpaced, 1 stream each,
    /// 2 threads, 60 s drain, no server shutdown, 5 connect retries with
    /// 50 ms base backoff, reattach on.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            sessions: 100,
            concurrent: 32,
            rate: 0.0,
            streams: 1,
            threads: 2,
            duration: None,
            seed_base: 1,
            drain_timeout: Duration::from_secs(60),
            shutdown: false,
            connect_retries: 5,
            retry_backoff_ms: 50,
            reattach: true,
            wire: WireMode::Json,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        fn bad(field: &str, message: &str) -> ServeError {
            ServeError::InvalidConfig {
                field: field.to_string(),
                message: message.to_string(),
            }
        }
        if self.sessions == 0 && self.duration.is_none() {
            return Err(bad(
                "sessions",
                "0 (unlimited) requires a duration to bound the run",
            ));
        }
        if self.concurrent == 0 {
            return Err(bad("concurrent", "must be at least 1"));
        }
        if self.threads == 0 {
            return Err(bad("threads", "must be at least 1"));
        }
        if self.streams == 0 {
            return Err(bad("streams", "must be at least 1"));
        }
        if !self.rate.is_finite() || self.rate < 0.0 {
            return Err(bad("rate", "must be a finite non-negative number"));
        }
        Ok(())
    }
}

/// What the load generator observed, printed (and optionally written as
/// JSON) by `cptgen loadgen`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Sessions successfully opened.
    pub sessions_opened: u64,
    /// Opens shed by server admission control (`overloaded`); every shed
    /// was retried, so sheds do not imply lost sessions.
    pub sessions_shed: u64,
    /// Sessions driven to `finished` and closed.
    pub sessions_completed: u64,
    /// Sessions that ended with a terminal failure record (contained
    /// worker panic or drain force-fail).
    #[serde(default)]
    pub sessions_failed: u64,
    /// Sessions resumed via `reattach` after a dropped connection.
    #[serde(default)]
    pub sessions_reattached: u64,
    /// Events received over the wire (data events only).
    pub events_received: u64,
    /// Order-independent digest of every data event received, as 16 hex
    /// digits: per session, FNV-1a over the session seed and the canonical
    /// binary encoding ([`wire::encode_event`]) of its events in order;
    /// across sessions, a wrapping sum. Two runs that delivered
    /// bit-identical per-stream events produce the same digest at any
    /// shard × worker × thread count and under either codec (the JSON
    /// path re-encodes through the same canonical binary form;
    /// `serde_json`'s `float_roundtrip` keeps the f64 bits exact).
    #[serde(default)]
    pub events_digest: String,
    /// Non-overload protocol errors observed (including sessions lost to
    /// an unrecoverable disconnect).
    pub errors: u64,
    /// Connect attempts retried after `ECONNREFUSED`.
    #[serde(default)]
    pub connect_retries: u64,
    /// Open attempts retried after an admission shed.
    #[serde(default)]
    pub open_retries: u64,
    /// Mid-run reconnects that successfully reattached.
    #[serde(default)]
    pub reconnects: u64,
    /// Wall-clock run time in seconds.
    pub elapsed_secs: f64,
    /// Events received per second of run time.
    pub events_per_sec: f64,
    /// Data events delivered per session, aggregated over every session
    /// this client pulled events from (nearest-rank percentiles over the
    /// exact counts, not histogram buckets).
    #[serde(default)]
    pub events_per_session_p50: u64,
    #[serde(default)]
    pub events_per_session_p99: u64,
    #[serde(default)]
    pub events_per_session_mean: f64,
    #[serde(default)]
    pub events_per_session_max: u64,
    /// Client-observed `open` latency, p50/p99 (µs, bucket upper bound).
    pub open_p50_us: u64,
    pub open_p99_us: u64,
    /// Client-observed `next` latency, p50/p99 (µs, bucket upper bound).
    pub next_p50_us: u64,
    pub next_p99_us: u64,
    /// The server's final stats snapshot, if it could be fetched.
    pub server_stats: Option<StatsSnapshot>,
    /// Model-lifecycle counters copied out of [`Self::server_stats`] so a
    /// CI gate can assert on them without digging into the nested
    /// snapshot (all zero when the snapshot could not be fetched or the
    /// server runs without a registry).
    #[serde(default)]
    pub live_version: u64,
    #[serde(default)]
    pub versions_published: u64,
    #[serde(default)]
    pub versions_rolled_back: u64,
    #[serde(default)]
    pub versions_quarantined: u64,
    #[serde(default)]
    pub finetunes_completed: u64,
    #[serde(default)]
    pub finetunes_failed: u64,
    /// Shard layout copied out of [`Self::server_stats`] (zero when the
    /// snapshot could not be fetched): shard count and the max/min
    /// runnable-session occupancy across shards, so imbalance is visible
    /// without digging into the nested snapshot.
    #[serde(default)]
    pub shards: u64,
    #[serde(default)]
    pub shard_runnable_max: u64,
    #[serde(default)]
    pub shard_runnable_min: u64,
}

/// One connection to the server, speaking either codec. The JSON path
/// reuses one line `String`; the binary path reuses one outbound and one
/// inbound frame buffer — steady-state requests allocate nothing but the
/// decoded response.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    mode: WireMode,
    line: String,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

impl Client {
    fn connect(addr: &str, mode: WireMode) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single small writes; Nagle only delays them.
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            mode,
            line: String::new(),
            frame: Vec::new(),
            payload: Vec::new(),
        };
        if mode == WireMode::Bin {
            // Buffered with the first request frame — one packet, and the
            // server's codec peek sees MAGIC first.
            wire::write_preamble(&mut client.writer)?;
        }
        Ok(client)
    }

    fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        match self.mode {
            WireMode::Json => {
                serde_json::to_writer(&mut self.writer, req).map_err(std::io::Error::other)?;
                self.writer.write_all(b"\n")?;
                self.writer.flush()?;
                self.line.clear();
                let n = self.reader.read_line(&mut self.line)?;
                if n == 0 {
                    return Err(ServeError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                Ok(serde_json::from_str(&self.line).map_err(std::io::Error::other)?)
            }
            WireMode::Bin => {
                self.frame.clear();
                wire::encode_request(req, &mut self.frame);
                wire::write_frame(&mut self.writer, &self.frame)?;
                self.writer.flush()?;
                let got = wire::read_frame(&mut self.reader, &mut self.payload)
                    .map_err(frame_to_io)?;
                if !got {
                    return Err(ServeError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                Ok(wire::decode_response(&self.payload).map_err(std::io::Error::other)?)
            }
        }
    }
}

fn frame_to_io(e: wire::FrameError) -> std::io::Error {
    match e {
        wire::FrameError::Io(io) => io,
        wire::FrameError::Protocol(p) => std::io::Error::other(p),
    }
}

/// Counters shared across client threads.
#[derive(Default)]
struct Tally {
    opened: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    reattached: AtomicU64,
    events: AtomicU64,
    errors: AtomicU64,
    connect_retries: AtomicU64,
    open_retries: AtomicU64,
    reconnects: AtomicU64,
    /// Open attempts so far, used for rate pacing and seed assignment.
    attempts: AtomicU64,
    /// Order-independent events digest: wrapping sum of per-session
    /// FNV-1a digests, folded in as each thread exits.
    digest: AtomicU64,
    /// Per-session data-event counts, merged in as each thread exits.
    per_session: Mutex<Vec<u64>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// What one client thread tracks per open session: the running event
/// count and digest state. The digest is seeded from the session *seed*,
/// not the session id — ids embed shard bits, seeds are stable across
/// shard counts.
struct SessionTally {
    events: u64,
    fnv: u64,
}

impl SessionTally {
    fn new(seed: u64) -> SessionTally {
        SessionTally {
            events: 0,
            fnv: fnv1a(FNV_OFFSET, &seed.to_le_bytes()),
        }
    }
}

/// One splitmix64 scramble, for deterministic backoff jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Capped exponential backoff with deterministic jitter in
/// `[cap/2, cap]`, so synchronized retry storms decorrelate without a
/// global RNG.
fn backoff_with_jitter(base_ms: u64, attempt: u32, salt: u64, cap_ms: u64) -> Duration {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.min(10))
        .min(cap_ms)
        .max(1);
    let jitter = splitmix64(salt ^ u64::from(attempt)) % (exp / 2 + 1);
    Duration::from_millis(exp - exp / 2 + jitter)
}

/// Connects, retrying `ECONNREFUSED` with backoff (a restarting server is
/// a transient, not an error). Other failures surface immediately.
fn connect_with_retry(cfg: &LoadgenConfig, tally: &Tally) -> Result<Client, ServeError> {
    let mut attempt: u32 = 0;
    loop {
        match Client::connect(&cfg.addr, cfg.wire) {
            Ok(c) => return Ok(c),
            Err(ServeError::Io(e))
                if e.kind() == std::io::ErrorKind::ConnectionRefused
                    && attempt < cfg.connect_retries =>
            {
                tally.connect_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff_with_jitter(
                    cfg.retry_backoff_ms,
                    attempt,
                    cfg.seed_base,
                    2_000,
                ));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A connection plus the detach token arming its disconnect behavior.
struct Conn {
    client: Client,
    /// Present once `detach` is armed; used to reattach after a drop.
    token: Option<String>,
}

/// Connects (with retry) and, when configured, arms detach-on-disconnect.
fn establish(cfg: &LoadgenConfig, tally: &Tally) -> Result<Conn, ServeError> {
    let mut client = connect_with_retry(cfg, tally)?;
    let mut token = None;
    if cfg.reattach {
        if let Ok(Response::Detached { token: t }) = client.request(&Request::Detach) {
            token = Some(t);
        }
    }
    Ok(Conn { client, token })
}

/// After a dropped connection: reconnect, present the detach token, and
/// adopt the parked sessions. On success `open` holds exactly the
/// server-side surviving set. `None` means the sessions are lost.
fn recover(
    cfg: &LoadgenConfig,
    tally: &Tally,
    token: &str,
    open: &mut Vec<u64>,
) -> Option<Conn> {
    let mut conn = establish(cfg, tally).ok()?;
    match conn.client.request(&Request::Reattach {
        token: token.to_string(),
    }) {
        Ok(Response::Reattached { sessions }) => {
            tally
                .reattached
                .fetch_add(sessions.len() as u64, Ordering::Relaxed);
            tally.reconnects.fetch_add(1, Ordering::Relaxed);
            *open = sessions;
            Some(conn)
        }
        _ => None,
    }
}

/// Runs the load generator to completion and reports what it observed.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    cfg.validate()?;
    let start = Instant::now();
    let open_deadline = cfg.duration.map(|d| start + d);
    let tally = Arc::new(Tally::default());
    let open_hist = Arc::new(LatencyHistogram::new());
    let next_hist = Arc::new(LatencyHistogram::new());

    // Fail fast (and typed) if the server is unreachable, before spawning.
    // Retries absorb a server that is still binding its socket.
    drop(connect_with_retry(cfg, &tally)?);

    let per_thread = cfg.concurrent.div_ceil(cfg.threads);
    let threads: Vec<_> = (0..cfg.threads)
        .map(|i| {
            let cfg = cfg.clone();
            let tally = Arc::clone(&tally);
            let open_hist = Arc::clone(&open_hist);
            let next_hist = Arc::clone(&next_hist);
            std::thread::Builder::new()
                .name(format!("cpt-loadgen-{i}"))
                .spawn(move || {
                    let mut counts: HashMap<u64, SessionTally> = HashMap::new();
                    client_thread(&cfg, per_thread, start, open_deadline, &tally, &open_hist,
                        &next_hist, &mut counts);
                    let mut digest: u64 = 0;
                    let mut per = tally.per_session.lock().expect("per-session tally poisoned");
                    for t in counts.into_values() {
                        per.push(t.events);
                        digest = digest.wrapping_add(t.fnv);
                    }
                    drop(per);
                    tally.digest.fetch_add(digest, Ordering::Relaxed);
                })
        })
        .collect::<Result<_, _>>()
        .map_err(ServeError::Io)?;
    for t in threads {
        let _ = t.join();
    }

    // Final server snapshot (and optional shutdown) on a fresh connection.
    let mut server_stats = None;
    if let Ok(mut client) = Client::connect(&cfg.addr, cfg.wire) {
        if let Ok(Response::Stats { stats }) = client.request(&Request::Stats) {
            server_stats = Some(*stats);
        }
        if cfg.shutdown {
            let _ = client.request(&Request::Shutdown);
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    let events = tally.events.load(Ordering::Relaxed);
    let mut per_session = std::mem::take(
        &mut *tally.per_session.lock().expect("per-session tally poisoned"),
    );
    per_session.sort_unstable();
    let nearest_rank = |q: f64| -> u64 {
        match per_session.len() {
            0 => 0,
            n => per_session[((q * n as f64).ceil() as usize).clamp(1, n) - 1],
        }
    };
    Ok(LoadgenReport {
        sessions_opened: tally.opened.load(Ordering::Relaxed),
        sessions_shed: tally.shed.load(Ordering::Relaxed),
        sessions_completed: tally.completed.load(Ordering::Relaxed),
        sessions_failed: tally.failed.load(Ordering::Relaxed),
        sessions_reattached: tally.reattached.load(Ordering::Relaxed),
        events_received: events,
        events_digest: format!("{:016x}", tally.digest.load(Ordering::Relaxed)),
        errors: tally.errors.load(Ordering::Relaxed),
        connect_retries: tally.connect_retries.load(Ordering::Relaxed),
        open_retries: tally.open_retries.load(Ordering::Relaxed),
        reconnects: tally.reconnects.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        events_per_sec: if elapsed > 0.0 { events as f64 / elapsed } else { 0.0 },
        events_per_session_p50: nearest_rank(0.50),
        events_per_session_p99: nearest_rank(0.99),
        events_per_session_mean: if per_session.is_empty() {
            0.0
        } else {
            per_session.iter().sum::<u64>() as f64 / per_session.len() as f64
        },
        events_per_session_max: per_session.last().copied().unwrap_or(0),
        open_p50_us: open_hist.quantile_us(0.50),
        open_p99_us: open_hist.quantile_us(0.99),
        next_p50_us: next_hist.quantile_us(0.50),
        next_p99_us: next_hist.quantile_us(0.99),
        live_version: server_stats.as_ref().map(|s| s.live_version).unwrap_or(0),
        versions_published: server_stats
            .as_ref()
            .map(|s| s.versions_published)
            .unwrap_or(0),
        versions_rolled_back: server_stats
            .as_ref()
            .map(|s| s.versions_rolled_back)
            .unwrap_or(0),
        versions_quarantined: server_stats
            .as_ref()
            .map(|s| s.versions_quarantined)
            .unwrap_or(0),
        finetunes_completed: server_stats
            .as_ref()
            .map(|s| s.finetunes_completed)
            .unwrap_or(0),
        finetunes_failed: server_stats
            .as_ref()
            .map(|s| s.finetunes_failed)
            .unwrap_or(0),
        shards: server_stats.as_ref().map(|s| s.shards).unwrap_or(0),
        shard_runnable_max: server_stats
            .as_ref()
            .map(|s| s.shard_runnable_max)
            .unwrap_or(0),
        shard_runnable_min: server_stats
            .as_ref()
            .map(|s| s.shard_runnable_min)
            .unwrap_or(0),
        server_stats,
    })
}

/// True while this thread may claim another open attempt; claims the
/// attempt index (for pacing + seed) when it may.
fn claim_attempt(
    cfg: &LoadgenConfig,
    open_deadline: Option<Instant>,
    tally: &Tally,
) -> Option<u64> {
    if let Some(d) = open_deadline {
        if Instant::now() >= d {
            return None;
        }
    }
    // Claim optimistically, then give the slot back if over target.
    let idx = tally.attempts.fetch_add(1, Ordering::SeqCst);
    if cfg.sessions > 0 && idx >= cfg.sessions {
        None
    } else {
        Some(idx)
    }
}

/// Handles a dead connection mid-run: reattach when armed, otherwise the
/// thread's open sessions are lost (counted as errors). Returns the new
/// connection, or `None` when the thread should give up.
fn handle_disconnect(
    cfg: &LoadgenConfig,
    tally: &Tally,
    conn: &Conn,
    open: &mut Vec<u64>,
) -> Option<Conn> {
    if let Some(token) = conn.token.clone() {
        if let Some(fresh) = recover(cfg, tally, &token, open) {
            return Some(fresh);
        }
    }
    // Sessions abandoned server-side (or parked until the TTL reaper
    // reclaims them): each is an observable loss.
    tally
        .errors
        .fetch_add(open.len() as u64 + 1, Ordering::Relaxed);
    open.clear();
    None
}

#[allow(clippy::too_many_arguments)]
fn client_thread(
    cfg: &LoadgenConfig,
    per_thread: usize,
    start: Instant,
    open_deadline: Option<Instant>,
    tally: &Tally,
    open_hist: &LatencyHistogram,
    next_hist: &LatencyHistogram,
    counts: &mut HashMap<u64, SessionTally>,
) {
    let mut conn = match establish(cfg, tally) {
        Ok(c) => c,
        Err(_) => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    // Sessions this thread currently has open.
    let mut open: Vec<u64> = Vec::with_capacity(per_thread);
    // A claimed-but-unopened attempt (kept across shed/disconnect retries
    // so no claimed session is ever silently dropped).
    let mut pending: Option<u64> = None;
    let mut shed_streak: u32 = 0;
    let mut opening_done = false;
    let mut drain_deadline: Option<Instant> = None;
    // Reused scratch for canonical event encoding (digest folding).
    let mut scratch: Vec<u8> = Vec::new();

    loop {
        // Open phase: top up to this thread's share of the concurrency
        // target, paced to the global rate.
        while !opening_done && open.len() < per_thread {
            let idx = match pending.take() {
                Some(i) => i,
                None => match claim_attempt(cfg, open_deadline, tally) {
                    Some(i) => i,
                    None => {
                        opening_done = true;
                        drain_deadline = Some(Instant::now() + cfg.drain_timeout);
                        break;
                    }
                },
            };
            if cfg.rate > 0.0 {
                let target = start + Duration::from_secs_f64(idx as f64 / cfg.rate);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
            }
            let req = Request::Open {
                seed: cfg.seed_base + idx,
                streams: cfg.streams,
                device: "phone".to_string(),
                max_stream_len: None,
            };
            let t0 = Instant::now();
            match conn.client.request(&req) {
                Ok(Response::Opened { session }) => {
                    open_hist.record(t0.elapsed());
                    tally.opened.fetch_add(1, Ordering::Relaxed);
                    counts.insert(session, SessionTally::new(cfg.seed_base + idx));
                    open.push(session);
                    shed_streak = 0;
                }
                Ok(Response::Error { kind: ErrorKind::Overloaded, .. }) => {
                    open_hist.record(t0.elapsed());
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    tally.open_retries.fetch_add(1, Ordering::Relaxed);
                    // Retry the same attempt after a backoff; meanwhile
                    // fall through to the drive phase so this thread's own
                    // sessions progress (and free server slots).
                    pending = Some(idx);
                    std::thread::sleep(backoff_with_jitter(
                        cfg.retry_backoff_ms,
                        shed_streak,
                        cfg.seed_base ^ idx,
                        500,
                    ));
                    shed_streak = shed_streak.saturating_add(1);
                    break;
                }
                Ok(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    pending = Some(idx);
                    match handle_disconnect(cfg, tally, &conn, &mut open) {
                        Some(fresh) => conn = fresh,
                        None => return,
                    }
                }
            }
        }

        if open.is_empty() {
            if opening_done {
                return;
            }
            continue;
        }
        if let Some(d) = drain_deadline {
            if Instant::now() >= d {
                // Give up on stragglers; close them so the server reclaims
                // the slots.
                for id in open.drain(..) {
                    let _ = conn.client.request(&Request::Close { session: id });
                }
                return;
            }
        }

        // Drive phase: round-robin one `next` over every open session,
        // closing the ones that finish.
        let mut i = 0;
        while i < open.len() {
            let id = open[i];
            let req = Request::Next {
                session: id,
                max: 64,
                wait_ms: 50,
            };
            let t0 = Instant::now();
            match conn.client.request(&req) {
                Ok(Response::Events { events, finished, .. }) => {
                    next_hist.record(t0.elapsed());
                    let data = events.iter().filter(|e| e.data().is_some()).count() as u64;
                    let failed = events.iter().any(|e| e.is_failure());
                    tally.events.fetch_add(data, Ordering::Relaxed);
                    if let Some(t) = counts.get_mut(&id) {
                        // Fold each data event's canonical binary encoding
                        // into the session digest — codec-independent, so
                        // JSON and binary clients produce the same digest.
                        for e in events.iter().filter(|e| e.data().is_some()) {
                            scratch.clear();
                            wire::encode_event(e, &mut scratch);
                            t.fnv = fnv1a(t.fnv, &scratch);
                        }
                        t.events += data;
                    }
                    if finished {
                        let closed = matches!(
                            conn.client.request(&Request::Close { session: id }),
                            Ok(Response::Closed { .. })
                        );
                        if failed {
                            // Terminal failure record: the session ended,
                            // but not successfully.
                            tally.failed.fetch_add(1, Ordering::Relaxed);
                        } else if closed {
                            tally.completed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        open.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                Ok(Response::Error { kind: ErrorKind::Overloaded, .. }) => {
                    // An overloaded server shedding mid-session is asking
                    // for patience, not reporting a failure: count it as a
                    // shed, distinct from generic errors, and retry the
                    // session on the next round-robin pass.
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                Ok(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                Err(_) => {
                    // `recover` rebuilds `open` from the server's parked
                    // set, so restart the round-robin from the front.
                    match handle_disconnect(cfg, tally, &conn, &mut open) {
                        Some(fresh) => {
                            conn = fresh;
                            i = 0;
                        }
                        None => return,
                    }
                }
            }
        }
    }
}
