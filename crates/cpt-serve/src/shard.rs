//! One shard of the shared-nothing serve engine.
//!
//! A shard is a complete miniature of the old single-lock engine: it owns
//! its sessions, run queue, decode-state free-list, model-version
//! replicas, latency counters, and a private `work`/`delivery` condvar
//! pair. Decode workers are pinned to exactly one shard, so on the hot
//! path (`open`/`next`/`close`/decode slice) a thread only ever takes *its
//! own shard's* mutex — shards never touch each other's state, in the
//! TrafficEngine shared-nothing idiom.
//!
//! The only cross-shard state is [`Gauges`] (relaxed atomics for global
//! admission) and the engine-level lifecycle/detach maps, which shards
//! reach strictly *upward* through [`ShardUplink`] after dropping their
//! own lock — the lock order is always engine → shard, never shard →
//! engine, so no lock cycle exists.
//!
//! Determinism is untouched by sharding: a session's event sequence is a
//! pure function of `(model, StreamParams)`, each shard schedules its
//! sessions exactly as the unsharded engine did, and which shard a
//! session lands on cannot influence its bytes.

#![deny(clippy::unwrap_used)]

use crate::chaos::ChaosPlan;
use crate::engine::{DecodedEvent, EventBatch, ServeConfig, SessionEvent};
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::steer::Steering;
use cpt_gpt::{BatchDecoder, CptGpt, DecodeState, RoundOutcome, SessionDecoder, StreamParams};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

/// Global admission gauges — the only hot-path state shared by every
/// shard, all relaxed atomics. `open` is reserved *before* a shard is
/// picked (fetch_add, backed out on failure), so the session cap stays
/// strict even though no lock spans the shards; `queued` is a watermark
/// gauge maintained by every queue mutation.
pub(crate) struct Gauges {
    /// Open sessions across all shards (admission cap).
    pub(crate) open: AtomicUsize,
    /// Undelivered events across all shards (admission watermark).
    pub(crate) queued: AtomicUsize,
}

impl Gauges {
    pub(crate) fn new() -> Gauges {
        Gauges {
            open: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
        }
    }
}

/// Engine services a shard may call *after dropping its own lock*. The
/// engine implements this; shards hold it weakly so shutdown can tear the
/// engine down while workers are mid-slice.
pub(crate) trait ShardUplink: Send + Sync {
    /// A worker decoded a non-finite event from `version`: demote it
    /// engine-wide (the divergence trip-wire).
    fn trip_divergence(&self, version: u64);
}

/// A model version's engine-wide lifecycle flags, shared by reference
/// with every shard's [`ModelEntry`] replica so the hot close path can
/// check "retired?" without the engine's lifecycle lock.
pub(crate) struct VersionMeta {
    /// Demoted and no longer the rollback target: the engine sweeps the
    /// version once every shard's refcount hits zero.
    pub(crate) retired: AtomicBool,
}

/// Scheduling state of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// In the run queue, awaiting a worker.
    Queued,
    /// A worker currently holds the decoder.
    Running,
    /// Event queue full; waiting for the consumer to drain.
    Parked,
    /// Decode complete (or failed); only delivery remains.
    Done,
}

struct SessionSlot {
    /// The decoder; `None` while a worker runs the session, and forever
    /// after a contained failure (the unwind consumed it).
    decoder: Option<SessionDecoder>,
    /// Undelivered events, bounded by `queue_capacity` (+1 for a terminal
    /// failure record, which is always accepted).
    queue: VecDeque<SessionEvent>,
    run: RunState,
    /// Close was requested while a worker held the decoder; the worker
    /// disposes of the session at slice end.
    closed: bool,
    /// The session died to a contained fault; its queue ends with
    /// [`SessionEvent::Failed`] and any in-flight slice is discarded.
    failed: bool,
    /// Parked under a detach token; unreachable through
    /// `next_events`/`close_session` until reattached.
    detached: bool,
    /// The model version this session opened on, pinned for its whole
    /// life (refcounted in this shard's [`ModelEntry`]).
    version: u64,
}

/// This shard's replica of one installed model version: the weight Arcs
/// every shard shares, plus the *shard-local* pin count. The engine sums
/// the per-shard counts (under its lifecycle lock) to decide retirement.
struct ModelEntry {
    model: Arc<CptGpt>,
    /// Int8 per-channel decode weights, quantized once at install and
    /// shared read-only by every shard's workers.
    quant: Option<Arc<cpt_gpt::QuantDecodeWeights>>,
    /// Sessions on *this shard* pinned to this version.
    refs: u64,
    /// Engine-wide lifecycle flags (see [`VersionMeta`]).
    meta: Arc<VersionMeta>,
}

struct ShardState {
    /// Sessions this shard owns, keyed by **global** session id (the
    /// shard bits are this shard's index — see [`Steering`]).
    sessions: HashMap<u64, SessionSlot>,
    run_queue: VecDeque<u64>,
    /// Recycled decode states. Invariant: every state here came from a
    /// session pinned to `live_version` — version transitions clear the
    /// list — so reuse can never leak one version's buffer geometry into
    /// another's decode.
    free_states: Vec<DecodeState>,
    /// Open sessions on this shard (occupancy stat; the admission cap
    /// uses the global gauge).
    open_count: usize,
    /// Shard-local id counter; composed with the shard index into the
    /// global session id.
    next_local: u64,
    /// Installed version replicas by id (same Arcs on every shard).
    models: HashMap<u64, ModelEntry>,
    /// Replica of the engine's live version (kept in sync under the
    /// engine's lifecycle lock).
    live_version: u64,
    /// Replica of the engine's rollback target.
    previous_version: Option<u64>,
}

/// Everything one shard's workers and front-end verbs share.
pub(crate) struct ShardShared {
    pub(crate) cfg: ServeConfig,
    /// This shard's index (the low id bits of every session it owns).
    pub(crate) idx: usize,
    /// Decode workers pinned to this shard (the batch fair-share
    /// divisor; the engine splits `cfg.workers` across shards).
    pub(crate) workers: usize,
    pub(crate) steer: Steering,
    pub(crate) chaos: ChaosPlan,
    state: Mutex<ShardState>,
    /// This shard's workers wait here for its run queue to fill.
    work: Condvar,
    /// This shard's consumers wait here for events to arrive.
    delivery: Condvar,
    /// Per-shard counters, merged engine-wide at `/stats`.
    pub(crate) metrics: Metrics,
    pub(crate) gauges: Arc<Gauges>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Upward path to the engine (trip-wire), called only lock-free.
    uplink: Weak<dyn ShardUplink>,
}

/// What a close/reap observed about the session's pinned version: when
/// the shard-local refcount hit zero on a retired version, the engine
/// should try a sweep.
pub(crate) struct ReleaseOutcome {
    pub(crate) version: u64,
    /// This shard's last pin on a retired version just dropped.
    pub(crate) sweep_candidate: bool,
}

impl ShardShared {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: ServeConfig,
        idx: usize,
        workers: usize,
        steer: Steering,
        chaos: ChaosPlan,
        gauges: Arc<Gauges>,
        shutdown: Arc<AtomicBool>,
        uplink: Weak<dyn ShardUplink>,
        live_version: u64,
    ) -> ShardShared {
        ShardShared {
            cfg,
            idx,
            workers,
            steer,
            chaos,
            state: Mutex::new(ShardState {
                sessions: HashMap::new(),
                run_queue: VecDeque::new(),
                free_states: Vec::new(),
                open_count: 0,
                next_local: 1,
                models: HashMap::new(),
                live_version,
                previous_version: None,
            }),
            work: Condvar::new(),
            delivery: Condvar::new(),
            metrics: Metrics::new(),
            gauges,
            shutdown,
            uplink,
        }
    }

    /// Locks the shard state, recovering from a poisoned mutex (a panic
    /// in one worker must not wedge the shard).
    fn lock_state(&self) -> MutexGuard<'_, ShardState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Wakes everything waiting on this shard (shutdown/drain path).
    pub(crate) fn notify_all(&self) {
        self.work.notify_all();
        self.delivery.notify_all();
    }

    /// Returns a decode state to the free-list — but only when it comes
    /// from a session pinned to the live version (cross-version reuse is
    /// never allowed).
    fn recycle(st: &mut ShardState, cap: usize, version: u64, decode: DecodeState) {
        if version == st.live_version && st.free_states.len() < cap {
            st.free_states.push(decode);
        }
    }

    /// Removes a session's storage (immediately, or deferred to the
    /// worker holding its decoder). Does *not* touch `open_count`, the
    /// open gauge, or the version refcount — callers own that.
    fn dispose_locked(&self, st: &mut ShardState, id: u64) {
        let running = st
            .sessions
            .get(&id)
            .map(|s| s.run == RunState::Running)
            .unwrap_or(false);
        if running {
            if let Some(slot) = st.sessions.get_mut(&id) {
                slot.closed = true;
                let n = slot.queue.len();
                slot.queue.clear();
                self.gauges.queued.fetch_sub(n, Ordering::Relaxed);
            }
        } else if let Some(slot) = st.sessions.remove(&id) {
            self.gauges
                .queued
                .fetch_sub(slot.queue.len(), Ordering::Relaxed);
            if let Some(decoder) = slot.decoder {
                ShardShared::recycle(st, self.cfg.max_sessions, slot.version, decoder.into_state());
            }
        }
    }

    /// Drops one session's pin on `version`, reporting whether the
    /// engine should attempt a retirement sweep.
    fn release_version_locked(&self, st: &mut ShardState, version: u64) -> ReleaseOutcome {
        let sweep_candidate = match st.models.get_mut(&version) {
            Some(e) => {
                e.refs = e.refs.saturating_sub(1);
                e.refs == 0 && e.meta.retired.load(Ordering::Relaxed)
            }
            None => false,
        };
        ReleaseOutcome {
            version,
            sweep_candidate,
        }
    }

    /// Marks a session failed: appends the terminal failure record, stops
    /// scheduling, and counts it. The failure record is always accepted
    /// even into a full queue (bound +1) so the consumer cannot miss it.
    fn fail_locked(&self, st: &mut ShardState, id: u64, reason: String) -> bool {
        let Some(slot) = st.sessions.get_mut(&id) else {
            return false;
        };
        if slot.closed || slot.failed {
            return false;
        }
        slot.queue.push_back(SessionEvent::Failed { reason });
        slot.run = RunState::Done;
        slot.failed = true;
        self.gauges.queued.fetch_add(1, Ordering::Relaxed);
        self.metrics.inc_failed();
        true
    }

    /// Admits a session on this shard. The caller (engine) has already
    /// passed global admission and *reserved* the open-gauge slot; on
    /// error the caller backs the reservation out.
    pub(crate) fn open_session(&self, params: StreamParams) -> Result<u64, ServeError> {
        let mut st = self.lock_state();
        // Pin the live version: the session decodes with these weights
        // for its whole life, whatever publishes happen meanwhile.
        let version = st.live_version;
        let model = match st.models.get(&version) {
            Some(e) => Arc::clone(&e.model),
            None => return Err(ServeError::UnknownVersion(version)),
        };
        let decoder = match st.free_states.pop() {
            Some(state) => model.open_session_reusing(params, state)?,
            None => model.open_session(params)?,
        };
        let local = st.next_local;
        st.next_local += 1;
        let id = self.steer.compose(self.idx, local);
        st.sessions.insert(
            id,
            SessionSlot {
                decoder: Some(decoder),
                queue: VecDeque::new(),
                run: RunState::Queued,
                closed: false,
                failed: false,
                detached: false,
                version,
            },
        );
        if let Some(e) = st.models.get_mut(&version) {
            e.refs += 1;
        }
        st.open_count += 1;
        st.run_queue.push_back(id);
        self.metrics.inc_opened();
        drop(st);
        self.work.notify_one();
        Ok(id)
    }

    /// Delivers up to `max` events in order, blocking up to `wait` while
    /// the queue is empty and the session is still decoding (see
    /// `ServeHandle::next_events` for the full contract).
    pub(crate) fn next_events(
        &self,
        id: u64,
        max: usize,
        wait: Duration,
    ) -> Result<EventBatch, ServeError> {
        let max = max.max(1);
        let deadline = Instant::now() + wait;
        let mut st = self.lock_state();
        loop {
            {
                let slot = st
                    .sessions
                    .get(&id)
                    .filter(|s| !s.closed && !s.detached)
                    .ok_or(ServeError::UnknownSession(id))?;
                if !slot.queue.is_empty() || slot.run == RunState::Done {
                    break;
                }
            }
            let now = Instant::now();
            if now >= deadline || self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            st = match self.delivery.wait_timeout(st, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }

        let (events, finished, wake) = {
            let slot = st
                .sessions
                .get_mut(&id)
                .filter(|s| !s.closed && !s.detached)
                .ok_or(ServeError::UnknownSession(id))?;
            let n = slot.queue.len().min(max);
            let events: Vec<SessionEvent> = slot.queue.drain(..n).collect();
            let wake =
                slot.run == RunState::Parked && slot.queue.len() < self.cfg.queue_capacity;
            if wake {
                slot.run = RunState::Queued;
            }
            let finished = slot.run == RunState::Done && slot.queue.is_empty();
            (events, finished, wake)
        };
        self.gauges.queued.fetch_sub(events.len(), Ordering::Relaxed);
        if wake {
            st.run_queue.push_back(id);
        }
        drop(st);
        if wake {
            self.work.notify_one();
        }
        self.metrics.add_delivered(events.len() as u64);
        Ok(EventBatch { events, finished })
    }

    /// Closes a session, recycling its decode buffers. The caller owns
    /// the open-gauge decrement and any retirement sweep.
    pub(crate) fn close_session(&self, id: u64) -> Result<ReleaseOutcome, ServeError> {
        let mut st = self.lock_state();
        let Some(version) = st
            .sessions
            .get(&id)
            .filter(|s| !s.closed && !s.detached)
            .map(|s| s.version)
        else {
            return Err(ServeError::UnknownSession(id));
        };
        self.dispose_locked(&mut st, id);
        st.open_count -= 1;
        self.gauges.open.fetch_sub(1, Ordering::Relaxed);
        let outcome = self.release_version_locked(&mut st, version);
        self.metrics.inc_closed();
        Ok(outcome)
    }

    /// True when `id` is an open, attached session on this shard.
    pub(crate) fn is_attached_open(&self, id: u64) -> bool {
        self.lock_state()
            .sessions
            .get(&id)
            .map(|s| !s.closed && !s.detached)
            .unwrap_or(false)
    }

    /// Marks a session detached (parked under a token). Returns false
    /// for unknown/closed/already-detached ids.
    pub(crate) fn mark_detached(&self, id: u64) -> bool {
        let mut st = self.lock_state();
        match st
            .sessions
            .get_mut(&id)
            .filter(|s| !s.closed && !s.detached)
        {
            Some(slot) => {
                slot.detached = true;
                true
            }
            None => false,
        }
    }

    /// Clears a session's detached flag (reattach). Returns false when
    /// the session is gone or was not detached.
    pub(crate) fn clear_detached(&self, id: u64) -> bool {
        let mut st = self.lock_state();
        match st.sessions.get_mut(&id).filter(|s| s.detached) {
            Some(slot) => {
                slot.detached = false;
                true
            }
            None => false,
        }
    }

    /// Reclaims one expired detached session. Returns the release
    /// outcome, or `None` when the session already ended another way.
    pub(crate) fn reap_detached(&self, id: u64) -> Option<ReleaseOutcome> {
        let mut st = self.lock_state();
        let version = st
            .sessions
            .get(&id)
            .filter(|s| s.detached)
            .map(|s| s.version)?;
        self.dispose_locked(&mut st, id);
        st.open_count -= 1;
        self.gauges.open.fetch_sub(1, Ordering::Relaxed);
        Some(self.release_version_locked(&mut st, version))
    }

    /// Sessions on this shard not yet closed (drain accounting).
    pub(crate) fn unclosed_count(&self) -> u64 {
        self.lock_state()
            .sessions
            .values()
            .filter(|s| !s.closed)
            .count() as u64
    }

    /// True while any session on this shard is still decoding.
    pub(crate) fn has_undone(&self) -> bool {
        self.lock_state()
            .sessions
            .values()
            .any(|s| !s.closed && s.run != RunState::Done)
    }

    /// Force-fails every session still decoding (drain deadline).
    pub(crate) fn force_fail_undone(&self) -> u64 {
        let mut st = self.lock_state();
        let stragglers: Vec<u64> = st
            .sessions
            .iter()
            .filter(|(_, s)| !s.closed && s.run != RunState::Done)
            .map(|(id, _)| *id)
            .collect();
        let mut force_failed = 0u64;
        for id in stragglers {
            if self.fail_locked(&mut st, id, "drain deadline exceeded".to_string()) {
                self.metrics.inc_force_failed();
                force_failed += 1;
            }
        }
        drop(st);
        self.delivery.notify_all();
        force_failed
    }

    /// Installs (or refreshes) a version replica on this shard.
    /// Idempotent: an existing entry (and its refcount) is kept.
    pub(crate) fn install_entry(
        &self,
        id: u64,
        model: Arc<CptGpt>,
        quant: Option<Arc<cpt_gpt::QuantDecodeWeights>>,
        meta: Arc<VersionMeta>,
    ) {
        let mut st = self.lock_state();
        st.models.entry(id).or_insert(ModelEntry {
            model,
            quant,
            refs: 0,
            meta,
        });
    }

    /// Drops a version replica. Only called by the engine once every
    /// shard's refcount is zero (or at uninstall of a never-promoted
    /// version); refuses if sessions are still pinned here.
    pub(crate) fn remove_version_entry(&self, id: u64) -> bool {
        let mut st = self.lock_state();
        let removable = st.models.get(&id).map(|e| e.refs == 0).unwrap_or(false);
        if removable {
            st.models.remove(&id);
        }
        removable
    }

    /// Sessions on this shard pinned to `id`.
    pub(crate) fn version_refs(&self, id: u64) -> u64 {
        self.lock_state()
            .models
            .get(&id)
            .map(|e| e.refs)
            .unwrap_or(0)
    }

    /// All version replicas and their shard-local pin counts.
    pub(crate) fn per_version_refs(&self) -> Vec<(u64, u64)> {
        self.lock_state()
            .models
            .iter()
            .map(|(v, e)| (*v, e.refs))
            .collect()
    }

    /// Updates this shard's live/previous replica after a version
    /// transition (promote/rollback/trip), clearing the free-list: its
    /// states belong to the old version's buffer geometry.
    pub(crate) fn set_versions(&self, live: u64, previous: Option<u64>) {
        let mut st = self.lock_state();
        st.live_version = live;
        st.previous_version = previous;
        st.free_states.clear();
    }

    /// Point-in-time occupancy: (open sessions, run-queue depth,
    /// free-list length).
    pub(crate) fn occupancy(&self) -> (usize, usize, usize) {
        let st = self.lock_state();
        (st.open_count, st.run_queue.len(), st.free_states.len())
    }
}

/// Extracts a human-readable reason from a panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panic: {s}")
    } else {
        "worker panic (non-string payload)".to_string()
    }
}

/// Blocks until a ready session is available on this shard (returning
/// its decoder, this slice's event budget, and the model version it is
/// pinned to) or shutdown is requested (`None`).
fn next_work(shard: &ShardShared) -> Option<(u64, SessionDecoder, usize, u64, Arc<CptGpt>)> {
    let mut st = shard.lock_state();
    loop {
        if shard.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        while let Some(id) = st.run_queue.pop_front() {
            let Some(slot) = st.sessions.get_mut(&id) else {
                continue;
            };
            // Stale queue entries (closed, failed, or re-scheduled
            // sessions) are skipped; only a Queued slot with its
            // decoder in place is runnable.
            if !(slot.run == RunState::Queued && !slot.closed && !slot.failed) {
                continue;
            }
            let Some(decoder) = slot.decoder.take() else {
                continue;
            };
            slot.run = RunState::Running;
            let room = shard.cfg.queue_capacity.saturating_sub(slot.queue.len());
            let budget = room.min(shard.cfg.slice_budget);
            let version = slot.version;
            if let Some(entry) = st.models.get(&version) {
                let model = Arc::clone(&entry.model);
                return Some((id, decoder, budget, version, model));
            }
            // Defensive: the pinned version vanished (the refcount should
            // make this impossible). Fail the session rather than decode
            // with the wrong weights.
            drop(decoder);
            shard.fail_locked(&mut st, id, format!("model version {version} vanished"));
        }
        st = match shard.work.wait(st) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// Batched analogue of [`next_work`]: fills `out` with `(id, decoder,
/// budget)` triples of a single model version in run-queue order, capped
/// at `batch_max` and a fair share of this shard's queue across this
/// shard's workers. See the unsharded engine history for the full
/// contract — the logic is identical, scoped to one shard.
fn next_work_batch(
    shard: &ShardShared,
    out: &mut Vec<(u64, SessionDecoder, usize)>,
) -> Option<(u64, Arc<CptGpt>, Option<Arc<cpt_gpt::QuantDecodeWeights>>)> {
    out.clear();
    let mut st = shard.lock_state();
    loop {
        if shard.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let share = (st.run_queue.len() / shard.workers.max(1)).max(1);
        let cap = shard.cfg.batch_max.min(share);
        let mut version: Option<u64> = None;
        let mut deferred: Vec<u64> = Vec::new();
        while out.len() < cap {
            let Some(id) = st.run_queue.pop_front() else {
                break;
            };
            if let Some(slot) = st.sessions.get_mut(&id) {
                if slot.run == RunState::Queued && !slot.closed && !slot.failed {
                    if let Some(v) = version {
                        if v != slot.version {
                            deferred.push(id);
                            continue;
                        }
                    }
                    if let Some(decoder) = slot.decoder.take() {
                        slot.run = RunState::Running;
                        version = Some(slot.version);
                        let room = shard
                            .cfg
                            .queue_capacity
                            .saturating_sub(slot.queue.len());
                        out.push((id, decoder, room.min(shard.cfg.slice_budget)));
                    }
                }
            }
        }
        // Other-version sessions go back to the head in original order.
        for id in deferred.into_iter().rev() {
            st.run_queue.push_front(id);
        }
        if let Some(v) = version {
            if let Some(entry) = st.models.get(&v) {
                let model = Arc::clone(&entry.model);
                let quant = entry.quant.clone();
                let more = !st.run_queue.is_empty();
                drop(st);
                if more {
                    shard.work.notify_one();
                }
                return Some((v, model, quant));
            }
            // Defensive: the pinned version vanished. Fail the grabbed
            // sessions rather than decode with the wrong weights.
            for (id, decoder, _) in out.drain(..) {
                drop(decoder);
                shard.fail_locked(&mut st, id, format!("model version {v} vanished"));
            }
            shard.delivery.notify_all();
            continue;
        }
        st = match shard.work.wait(st) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// One session's in-flight state during a batched slice.
struct BatchEntry {
    id: u64,
    /// `None` once the entry panicked (the decoder is poisoned and is
    /// dropped, never recycled — same rule as the sequential unwind path).
    decoder: Option<SessionDecoder>,
    /// Event budget for this slice (slice budget capped by queue room).
    budget: usize,
    /// Events decoded this slice, published in order at slice end.
    buf: Vec<DecodedEvent>,
    done: bool,
    panic: Option<String>,
    /// The failure was the divergence trip-wire (non-finite event), not a
    /// panic: counted separately, and it triggers the automatic rollback
    /// after the slice publishes.
    tripped: bool,
}

/// Publishes one batch entry's slice under the shard lock, mirroring the
/// sequential worker's publish arms exactly: vanished and close-pending
/// sessions recycle their buffers, force-failed sessions discard the
/// slice, panicked entries deliver their decoded prefix then the terminal
/// failure record, and live sessions re-enqueue / park / finish.
fn publish_entry(shard: &ShardShared, st: &mut ShardState, version: u64, e: BatchEntry) {
    match e.panic {
        Some(reason) => match st.sessions.get_mut(&e.id) {
            None => {}
            Some(slot) if slot.closed => {
                st.sessions.remove(&e.id);
            }
            Some(slot) => {
                let produced = e.buf.len();
                slot.queue.extend(e.buf.into_iter().map(SessionEvent::Data));
                slot.decoder = None;
                shard.gauges.queued.fetch_add(produced, Ordering::Relaxed);
                shard.fail_locked(st, e.id, reason);
            }
        },
        None => {
            let decoder = e.decoder.expect("non-panicked entry keeps its decoder");
            match st.sessions.get_mut(&e.id) {
                None => {
                    ShardShared::recycle(st, shard.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.closed => {
                    st.sessions.remove(&e.id);
                    ShardShared::recycle(st, shard.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.failed => {
                    slot.decoder = None;
                    ShardShared::recycle(st, shard.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) => {
                    let produced = e.buf.len();
                    slot.queue.extend(e.buf.into_iter().map(SessionEvent::Data));
                    if e.done {
                        slot.run = RunState::Done;
                        slot.decoder = Some(decoder);
                    } else if slot.queue.len() >= shard.cfg.queue_capacity {
                        slot.run = RunState::Parked;
                        slot.decoder = Some(decoder);
                    } else {
                        slot.run = RunState::Queued;
                        slot.decoder = Some(decoder);
                        st.run_queue.push_back(e.id);
                        shard.work.notify_one();
                    }
                    shard.gauges.queued.fetch_add(produced, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The batched decode worker for one shard: grab up to `batch_max` ready
/// sessions, advance them together one event per round through a
/// [`BatchDecoder`] (one packed per-layer GEMM over all live entries per
/// round), publish each session at slice end, repeat.
///
/// Containment is two-level, preserving the sequential loop's semantics:
/// the `BatchDecoder` contains per-entry panics (the chaos hook fires in
/// the same advance-order slot as the sequential check, and sampling runs
/// per entry), failing only the targeted session while the rest of the
/// batch proceeds; a panic inside the shared forward pass itself is
/// caught here and fails every live entry — the decode states may be
/// mid-scatter, so none of them can be trusted.
fn worker_loop_batched(shard: &ShardShared) {
    let chaos = shard.chaos;
    // One BatchDecoder per model version this worker has recently served:
    // during a hot-swap drain old and new versions decode side by side.
    // Swept aggressively — steady state is a single entry.
    let mut decoders: HashMap<u64, BatchDecoder> = HashMap::new();
    let mut work: Vec<(u64, SessionDecoder, usize)> = Vec::with_capacity(shard.cfg.batch_max);
    let mut entries: Vec<BatchEntry> = Vec::with_capacity(shard.cfg.batch_max);
    let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(shard.cfg.batch_max);
    let mut slice_idx: u64 = 0;
    while let Some((version, model, quant)) = next_work_batch(shard, &mut work) {
        let t0 = Instant::now();
        if decoders.len() > 4 {
            decoders.retain(|v, _| *v == version);
        }
        let bd = decoders.entry(version).or_insert_with(|| {
            BatchDecoder::with_quant(&model, shard.cfg.batch_max, quant.clone())
        });
        entries.clear();
        entries.extend(work.drain(..).map(|(id, decoder, budget)| BatchEntry {
            id,
            decoder: Some(decoder),
            budget,
            buf: Vec::new(),
            done: false,
            panic: None,
            tripped: false,
        }));
        loop {
            let live: Vec<usize> = (0..entries.len())
                .filter(|&k| {
                    let e = &entries[k];
                    e.panic.is_none() && !e.done && e.buf.len() < e.budget
                })
                .collect();
            if live.is_empty() {
                break;
            }
            let live_ids: Vec<u64> = live.iter().map(|&k| entries[k].id).collect();
            let mut refs: Vec<&mut SessionDecoder> = {
                let mut want = live.iter().copied().peekable();
                let mut refs = Vec::with_capacity(live.len());
                for (k, e) in entries.iter_mut().enumerate() {
                    if want.peek() == Some(&k) {
                        want.next();
                        refs.push(e.decoder.as_mut().expect("live entry keeps its decoder"));
                    }
                }
                refs
            };
            let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                bd.next_events(
                    &model,
                    &mut refs,
                    &mut |slot, events| {
                        let id = live_ids[slot];
                        if chaos.should_panic(id, events) {
                            panic!("chaos: injected panic advancing session {id}");
                        }
                    },
                    &mut outcomes,
                )
            }));
            match round {
                Ok(rows) => {
                    let mut produced = 0u64;
                    for (&k, oc) in live.iter().zip(outcomes.drain(..)) {
                        match oc {
                            RoundOutcome::Event(mut ev) => {
                                let e = &mut entries[k];
                                let emitted = e
                                    .decoder
                                    .as_ref()
                                    .map(|d| d.events_emitted())
                                    .unwrap_or(0);
                                if chaos.should_poison(e.id, emitted) {
                                    ev.iat = f64::NAN;
                                }
                                if !ev.iat.is_finite() || !ev.timestamp.is_finite() {
                                    // Divergence trip-wire: the event is
                                    // garbage, so the decode state is not
                                    // trusted either. Fail the session and
                                    // let the post-slice hook demote the
                                    // version.
                                    e.decoder = None;
                                    e.panic = Some(format!(
                                        "divergence trip-wire: non-finite event \
                                         (iat={}, timestamp={})",
                                        ev.iat, ev.timestamp
                                    ));
                                    e.tripped = true;
                                    shard.metrics.inc_divergence_trip();
                                } else {
                                    e.buf.push(ev);
                                    produced += 1;
                                }
                            }
                            RoundOutcome::Finished => entries[k].done = true,
                            RoundOutcome::Panicked(reason) => {
                                entries[k].decoder = None;
                                entries[k].panic = Some(reason);
                                shard.metrics.inc_worker_panic();
                            }
                        }
                    }
                    shard.metrics.record_batch_round(rows as u64, produced);
                }
                Err(payload) => {
                    let reason = panic_reason(payload.as_ref());
                    shard.metrics.inc_worker_panic();
                    for &k in &live {
                        entries[k].decoder = None;
                        entries[k].panic = Some(reason.clone());
                    }
                    break;
                }
            }
        }
        let total: u64 = entries.iter().map(|e| e.buf.len() as u64).sum();
        shard.metrics.record_slice(t0.elapsed(), total);
        if let Some(delay) = chaos.slice_delay(slice_idx) {
            std::thread::sleep(delay);
        }
        slice_idx += 1;

        let mut st = shard.lock_state();
        let mut tripped = false;
        for e in entries.drain(..) {
            tripped |= e.tripped;
            publish_entry(shard, &mut st, version, e);
        }
        drop(st);
        shard.delivery.notify_all();
        if tripped {
            // Strictly after dropping the shard lock: the uplink takes
            // the engine lifecycle lock, which nests *outside* shard
            // locks.
            if let Some(up) = shard.uplink.upgrade() {
                up.trip_divergence(version);
            }
        }
    }
}

/// One decode worker, pinned to one shard. Dispatches on
/// [`ServeConfig::batch_decode`]: both loops produce bit-identical
/// per-session output; the batched loop packs the forward passes of every
/// session the worker holds into one GEMM per layer.
pub(crate) fn worker_loop(shard: &ShardShared) {
    if shard.cfg.batch_decode {
        worker_loop_batched(shard)
    } else {
        worker_loop_sequential(shard)
    }
}

/// The sequential decode worker: pull a ready session, advance it by at
/// most its slice budget **under `catch_unwind`**, publish the events,
/// re-enqueue (or park/finish/fail), repeat. A panic while decoding fails
/// only the session being advanced; the worker survives and re-enters its
/// loop.
fn worker_loop_sequential(shard: &ShardShared) {
    let chaos = shard.chaos;
    // Reused across slices: allocation-free steady state. On a panic the
    // buffer holds the slice's already-decoded prefix.
    let mut buf: Vec<DecodedEvent> = Vec::new();
    let mut slice_idx: u64 = 0;
    while let Some((id, decoder, budget, version, model)) = next_work(shard) {
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut decoder = decoder;
            let mut done = decoder.is_finished();
            let mut trip: Option<String> = None;
            while buf.len() < budget {
                if chaos.should_panic(id, decoder.events_emitted()) {
                    panic!("chaos: injected panic advancing session {id}");
                }
                match decoder.next_event(&model) {
                    Some(mut ev) => {
                        if chaos.should_poison(id, decoder.events_emitted()) {
                            ev.iat = f64::NAN;
                        }
                        if !ev.iat.is_finite() || !ev.timestamp.is_finite() {
                            trip = Some(format!(
                                "divergence trip-wire: non-finite event \
                                 (iat={}, timestamp={})",
                                ev.iat, ev.timestamp
                            ));
                            break;
                        }
                        buf.push(ev);
                    }
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            (decoder, done, trip)
        }));
        shard.metrics.record_slice(t0.elapsed(), buf.len() as u64);
        shard.metrics.add_sequential_tokens(buf.len() as u64);
        if let Some(delay) = chaos.slice_delay(slice_idx) {
            std::thread::sleep(delay);
        }
        slice_idx += 1;

        let mut st = shard.lock_state();
        let mut tripped = false;
        match outcome {
            Ok((decoder, done, trip)) => match st.sessions.get_mut(&id) {
                None => {
                    // Session vanished while running (defensive; close
                    // defers removal, so this should not happen). Recycle
                    // the buffers.
                    ShardShared::recycle(&mut st, shard.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.closed => {
                    st.sessions.remove(&id);
                    ShardShared::recycle(&mut st, shard.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.failed => {
                    // Force-failed (drain deadline) while this worker held
                    // the decoder: the terminal Failed record is already
                    // queued, so the slice is discarded — delivering data
                    // after the terminal record would corrupt the stream.
                    slot.decoder = None;
                    ShardShared::recycle(&mut st, shard.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if trip.is_some() => {
                    // Divergence trip-wire: deliver the clean prefix, fail
                    // the session, drop the decoder (its state produced
                    // garbage — never recycled), demote after unlock.
                    let produced = buf.len();
                    slot.queue.extend(buf.drain(..).map(SessionEvent::Data));
                    slot.decoder = None;
                    shard.gauges.queued.fetch_add(produced, Ordering::Relaxed);
                    shard.metrics.inc_divergence_trip();
                    shard.fail_locked(
                        &mut st,
                        id,
                        trip.unwrap_or_else(|| "divergence trip-wire".to_string()),
                    );
                    drop(decoder);
                    tripped = true;
                }
                Some(slot) => {
                    let produced = buf.len();
                    slot.queue.extend(buf.drain(..).map(SessionEvent::Data));
                    if done {
                        slot.run = RunState::Done;
                        slot.decoder = Some(decoder);
                    } else if slot.queue.len() >= shard.cfg.queue_capacity {
                        slot.run = RunState::Parked;
                        slot.decoder = Some(decoder);
                    } else {
                        slot.run = RunState::Queued;
                        slot.decoder = Some(decoder);
                        st.run_queue.push_back(id);
                        shard.work.notify_one();
                    }
                    shard.gauges.queued.fetch_add(produced, Ordering::Relaxed);
                }
            },
            Err(payload) => {
                // Contained: the decoder died with the unwind (its state
                // may be corrupt, so it is never recycled). Publish the
                // clean prefix, then the terminal failure record.
                shard.metrics.inc_worker_panic();
                match st.sessions.get_mut(&id) {
                    None => {}
                    Some(slot) if slot.closed => {
                        st.sessions.remove(&id);
                    }
                    Some(slot) => {
                        let produced = buf.len();
                        slot.queue.extend(buf.drain(..).map(SessionEvent::Data));
                        slot.decoder = None;
                        shard.gauges.queued.fetch_add(produced, Ordering::Relaxed);
                        shard.fail_locked(&mut st, id, panic_reason(payload.as_ref()));
                    }
                }
            }
        }
        drop(st);
        buf.clear();
        shard.delivery.notify_all();
        if tripped {
            if let Some(up) = shard.uplink.upgrade() {
                up.trip_divergence(version);
            }
        }
    }
}
