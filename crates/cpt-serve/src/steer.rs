//! Session steering: which shard owns which session.
//!
//! The sharded engine gives every shard its own scheduler state, so after
//! `open` no verb may need to ask "who owns this session?" under a shared
//! lock. The answer is encoded in the session id itself: the low
//! [`Steering::bits`] bits carry the shard index and the remaining bits a
//! per-shard local counter, so routing a `next`/`close`/`detach` verb is a
//! mask — no map, no lock, no cross-shard traffic.
//!
//! At `open`, a session is *steered* to a shard by a stable splitmix64
//! hash of its seed and its global open ordinal (the RFS-style connection
//! steering of the TrafficEngine exemplar): identical seeds still spread
//! across shards, and the choice is a pure function of (seed, ordinal), so
//! a replayed open sequence lands on the same shards.
//!
//! Compatibility invariant: at `shards = 1` the codec is the identity
//! (`bits = 0`), so session ids are `1, 2, 3, …` exactly as the unsharded
//! engine issued them — chaos plans and logs keyed to session ids keep
//! their meaning.

#![deny(clippy::unwrap_used)]

/// Upper bound on `--shards`; 6 id bits keeps the local counter at 58
/// bits, which at a billion opens/sec would take nine years to exhaust.
pub const MAX_SHARDS: usize = 64;

/// One splitmix64 scramble — the workspace-wide stateless mixer (same
/// constants as the generator's and chaos module's).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard-id codec: how many shards exist and how many low id bits
/// carry the shard index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Steering {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Low id bits reserved for the shard index (`ceil(log2(shards))`;
    /// 0 when `shards == 1`).
    pub bits: u32,
}

impl Steering {
    /// Codec for `shards` shards. `shards` must be in
    /// `1..=`[`MAX_SHARDS`] (enforced by `ServeConfig::validate`).
    pub fn new(shards: usize) -> Steering {
        let shards = shards.clamp(1, MAX_SHARDS);
        let bits = if shards <= 1 {
            0
        } else {
            shards.next_power_of_two().trailing_zeros()
        };
        Steering { shards, bits }
    }

    /// The shard an `open` with this seed and global open ordinal is
    /// steered to. Stable: a pure function of its inputs.
    pub fn steer(&self, seed: u64, ordinal: u64) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (splitmix64(seed ^ splitmix64(ordinal)) % self.shards as u64) as usize
    }

    /// Composes a global session id from a shard index and that shard's
    /// local counter value.
    pub fn compose(&self, shard: usize, local: u64) -> u64 {
        (local << self.bits) | shard as u64
    }

    /// Extracts the owning shard from a session id; `None` when the shard
    /// bits name a shard that does not exist (an unknown/forged id).
    pub fn shard_of(&self, id: u64) -> Option<usize> {
        let shard = (id & ((1u64 << self.bits) - 1)) as usize;
        (shard < self.shards).then_some(shard)
    }

    /// The shard-local counter value inside a session id.
    pub fn local_of(&self, id: u64) -> u64 {
        id >> self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_codec_is_identity() {
        let s = Steering::new(1);
        assert_eq!(s.bits, 0);
        for local in [1u64, 2, 3, 99, u32::MAX as u64] {
            assert_eq!(s.compose(0, local), local, "ids match the unsharded engine");
            assert_eq!(s.shard_of(local), Some(0));
            assert_eq!(s.local_of(local), local);
        }
        assert_eq!(s.steer(0xDEAD, 7), 0);
    }

    #[test]
    fn compose_and_route_round_trip() {
        for shards in [2usize, 3, 4, 7, 8, 64] {
            let s = Steering::new(shards);
            for shard in 0..shards {
                for local in [1u64, 2, 1000, 1 << 40] {
                    let id = s.compose(shard, local);
                    assert_eq!(s.shard_of(id), Some(shard), "shards={shards}");
                    assert_eq!(s.local_of(id), local, "shards={shards}");
                }
            }
        }
    }

    #[test]
    fn forged_shard_bits_are_rejected() {
        // 3 shards use 2 bits; the bit pattern 0b11 names shard 3, which
        // does not exist.
        let s = Steering::new(3);
        assert_eq!(s.bits, 2);
        assert_eq!(s.shard_of(0b111), None);
    }

    #[test]
    fn steering_spreads_identical_seeds() {
        let s = Steering::new(8);
        let mut seen = [0usize; 8];
        for ordinal in 0..1000 {
            seen[s.steer(42, ordinal)] += 1;
        }
        for (shard, n) in seen.iter().enumerate() {
            assert!(
                (60..=190).contains(n),
                "shard {shard} got {n}/1000 opens — steering is badly skewed"
            );
        }
    }

    #[test]
    fn steering_is_stable() {
        let s = Steering::new(8);
        for (seed, ordinal) in [(0u64, 0u64), (7, 3), (u64::MAX, 12345)] {
            assert_eq!(s.steer(seed, ordinal), s.steer(seed, ordinal));
        }
    }
}
