//! Pooled, reusable byte buffers for wire framing — the DPDK mbuf idiom.
//!
//! The binary wire path ([`crate::protocol::wire`]) encodes each frame into
//! a `Vec<u8>`. Allocating a fresh vector per response would put the
//! allocator back on the per-event hot path the engine worked to clear, so
//! connection handlers check buffers out of a [`BufferPool`] instead: a
//! checked-out [`PooledBuf`] derefs to `Vec<u8>`, and dropping it clears
//! the buffer (length, not capacity) and returns it to the pool. A frame's
//! steady-state cost is therefore zero allocations — the same few buffers
//! cycle between encode and write, already grown to the connection's
//! typical frame size.
//!
//! The pool is deliberately simple: a mutex over a stack of vectors. It is
//! per-connection-scoped in the server (contention-free) and global in the
//! loadgen client (shared across driver threads, where a single
//! uncontended mutex is noise next to the syscall each frame already
//! pays). Two bounds keep a burst from turning into a permanent memory
//! tax: at most [`BufferPool::max_pooled`] buffers are retained, and a
//! buffer that grew beyond [`BufferPool::max_buf_capacity`] is dropped
//! rather than pooled.

#![deny(clippy::unwrap_used)]

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// A bounded pool of reusable `Vec<u8>` frame buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    /// Retain at most this many idle buffers.
    max_pooled: usize,
    /// Never pool a buffer whose capacity grew beyond this (one giant
    /// frame must not pin its memory forever).
    max_buf_capacity: usize,
}

impl BufferPool {
    /// A pool retaining up to `max_pooled` idle buffers of at most
    /// `max_buf_capacity` bytes each.
    pub fn new(max_pooled: usize, max_buf_capacity: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            free: Mutex::new(Vec::new()),
            max_pooled,
            max_buf_capacity,
        })
    }

    /// Defaults sized for a connection handler: a handful of in-flight
    /// frames, 1 MiB retention cap per buffer.
    pub fn for_connection() -> Arc<BufferPool> {
        BufferPool::new(8, 1 << 20)
    }

    /// Checks out an empty buffer (pooled if available, fresh otherwise).
    /// Dropping the returned handle recycles it.
    pub fn get(self: &Arc<BufferPool>) -> PooledBuf {
        let buf = {
            let mut free = match self.free.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            free.pop()
        };
        PooledBuf {
            buf: buf.unwrap_or_default(),
            pool: Arc::clone(self),
        }
    }

    /// Idle buffers currently retained (for tests/stats).
    pub fn idle(&self) -> usize {
        match self.free.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_buf_capacity {
            return;
        }
        buf.clear();
        let mut free = match self.free.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }
}

/// A checked-out pool buffer; derefs to `Vec<u8>` and returns itself to
/// the pool on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = BufferPool::new(4, 1 << 20);
        {
            let mut b = pool.get();
            b.extend_from_slice(b"hello frame");
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1, "dropped buffer returned to the pool");
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffer comes back cleared");
        assert!(b.capacity() >= 11, "recycled buffer keeps its capacity");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_bounds_idle_count_and_buffer_size() {
        let pool = BufferPool::new(2, 64);
        let bufs: Vec<PooledBuf> = (0..4)
            .map(|_| {
                let mut b = pool.get();
                b.push(1);
                b
            })
            .collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2, "retention is capped at max_pooled");

        let mut big = pool.get();
        assert_eq!(pool.idle(), 1);
        big.extend_from_slice(&[0u8; 1024]);
        drop(big);
        assert_eq!(pool.idle(), 1, "oversized buffers are dropped, not pooled");
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new(4, 64);
        drop(pool.get());
        assert_eq!(pool.idle(), 0, "an untouched buffer has nothing to recycle");
    }
}
