//! The TCP front end: line-delimited JSON over std-thread networking.
//!
//! One thread per connection (capped), each multiplexing any number of
//! sessions over the shared [`Engine`] — the decode work itself always
//! happens on the engine's worker pool, so connection threads only parse,
//! dispatch, and serialize. A connection that disconnects has all its
//! still-open sessions closed for it, so abandoned clients cannot leak
//! session slots.
//!
//! Shutdown: the `shutdown` verb (or [`Server::stop`]) flips a stop flag
//! and self-connects to unblock `accept`; connection reads use a short
//! timeout so every thread notices the flag and exits promptly.

#![deny(clippy::unwrap_used)]

use crate::engine::{Engine, ServeConfig, ServeHandle, SessionId};
use crate::error::ServeError;
use crate::metrics::StatsSnapshot;
use crate::protocol::{ErrorKind, Request, Response};
use cpt_gpt::{CptGpt, StreamParams};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// TCP server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:9000` (port 0 picks a free port).
    pub addr: String,
    /// Engine configuration (workers, caps, watermarks).
    pub serve: ServeConfig,
    /// Concurrent connection cap; excess connections get one error line
    /// and are dropped.
    pub max_connections: usize,
}

impl ServerConfig {
    /// Defaults: the given address, engine defaults for `workers` workers,
    /// 256 connections.
    pub fn new(addr: impl Into<String>, workers: usize) -> Self {
        ServerConfig {
            addr: addr.into(),
            serve: ServeConfig::new(workers),
            max_connections: 256,
        }
    }
}

/// A bound, running generation server.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Decrements the connection count when a connection thread exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Starts the engine and binds the listener. The engine is live (and
    /// the port reachable) when this returns.
    pub fn bind(model: Arc<CptGpt>, cfg: ServerConfig) -> Result<Server, ServeError> {
        let engine = Engine::start(model, cfg.serve)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            engine,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// A library handle onto the same engine (used by in-process tests).
    pub fn handle(&self) -> ServeHandle {
        self.engine.handle()
    }

    /// A stop trigger usable from another thread: flips the flag and
    /// self-connects to unblock `accept`.
    pub fn stopper(&self) -> impl Fn() + Send + Sync + 'static {
        let stop = Arc::clone(&self.stop);
        let addr = self.listener.local_addr();
        move || {
            stop.store(true, Ordering::SeqCst);
            if let Ok(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
        }
    }

    /// Serves connections until `shutdown` is requested, then drains the
    /// connection threads, stops the engine, and returns the final stats.
    pub fn run(self) -> Result<StatsSnapshot, ServeError> {
        let conns = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if conns.fetch_add(1, Ordering::SeqCst) >= self.cfg.max_connections {
                conns.fetch_sub(1, Ordering::SeqCst);
                let _ = refuse_connection(stream, self.cfg.max_connections);
                continue;
            }
            let guard = ConnGuard(Arc::clone(&conns));
            let handle = self.engine.handle();
            let stop = Arc::clone(&self.stop);
            let stopper = self.stopper();
            let spawned = std::thread::Builder::new()
                .name("cpt-serve-conn".to_string())
                .spawn(move || {
                    let _guard = guard;
                    handle_connection(stream, &handle, &stop, &stopper);
                });
            match spawned {
                Ok(t) => threads.push(t),
                Err(_) => continue,
            }
        }
        for t in threads {
            let _ = t.join();
        }
        let stats = self.engine.handle().stats();
        self.engine.shutdown();
        Ok(stats)
    }
}

fn refuse_connection(stream: TcpStream, cap: usize) -> std::io::Result<()> {
    let mut w = BufWriter::new(stream);
    let resp = Response::Error {
        kind: ErrorKind::Overloaded,
        message: format!("too many connections (cap {cap})"),
    };
    write_response(&mut w, &resp)
}

fn write_response(w: &mut BufWriter<TcpStream>, resp: &Response) -> std::io::Result<()> {
    let line = serde_json::to_string(resp).map_err(std::io::Error::other)?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Serves one client: parse a request line, dispatch, write a response
/// line, repeat until disconnect or shutdown. Sessions the client leaves
/// open are closed on exit.
fn handle_connection(
    stream: TcpStream,
    handle: &ServeHandle,
    stop: &AtomicBool,
    stopper: &(impl Fn() + Send + Sync),
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Short read timeout so the thread re-checks the stop flag even when
    // the client is idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut owned: HashSet<u64> = HashSet::new();
    let mut line = String::new();

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // `line` is only cleared after a full line is processed, so a
        // timeout mid-line keeps the partial bytes and resumes.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let (resp, quit) = dispatch(&line, handle, &mut owned, stopper);
                line.clear();
                if write_response(&mut writer, &resp).is_err() || quit {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    for id in owned {
        let _ = handle.close_session(SessionId(id));
    }
}

/// Executes one request; returns the response and whether the connection
/// loop should exit afterwards (only for `shutdown`).
fn dispatch(
    line: &str,
    handle: &ServeHandle,
    owned: &mut HashSet<u64>,
    stopper: &(impl Fn() + Send + Sync),
) -> (Response, bool) {
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return (
                Response::Error {
                    kind: ErrorKind::InvalidRequest,
                    message: format!("bad request line: {e}"),
                },
                false,
            )
        }
    };
    match req {
        Request::Open {
            seed,
            streams,
            device,
            max_stream_len,
        } => {
            let device_type = match device.parse() {
                Ok(d) => d,
                Err(_) => {
                    return (
                        Response::Error {
                            kind: ErrorKind::InvalidRequest,
                            message: format!("unknown device type: {device}"),
                        },
                        false,
                    )
                }
            };
            let mut params = StreamParams::new(seed).streams(streams).device(device_type);
            params.max_stream_len = max_stream_len;
            match handle.open_session(params) {
                Ok(id) => {
                    owned.insert(id.0);
                    (Response::Opened { session: id.0 }, false)
                }
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Next {
            session,
            max,
            wait_ms,
        } => {
            // Cap the server-side block so one request cannot pin a
            // connection thread for long.
            let wait = Duration::from_millis(wait_ms.min(10_000));
            match handle.next_events(SessionId(session), max, wait) {
                Ok(batch) => (
                    Response::Events {
                        session,
                        events: batch.events,
                        finished: batch.finished,
                    },
                    false,
                ),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Close { session } => match handle.close_session(SessionId(session)) {
            Ok(()) => {
                owned.remove(&session);
                (Response::Closed { session }, false)
            }
            Err(e) => (Response::from_error(&e), false),
        },
        Request::Stats => (
            Response::Stats {
                stats: handle.stats(),
            },
            false,
        ),
        Request::Shutdown => {
            stopper();
            (Response::Bye, true)
        }
    }
}

/// Binds and runs a server to completion (the `cptgen serve` entry point).
/// `on_ready` receives the bound address before the accept loop starts —
/// the CLI prints its "listening on" line from it.
pub fn serve(
    model: Arc<CptGpt>,
    cfg: ServerConfig,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<StatsSnapshot, ServeError> {
    let server = Server::bind(model, cfg)?;
    on_ready(server.local_addr()?);
    server.run()
}
