//! The TCP front end: line-delimited JSON or negotiated binary frames
//! over std-thread networking.
//!
//! One thread per connection (capped), each multiplexing any number of
//! sessions over the shared [`Engine`] — the decode work itself always
//! happens on the engine's worker pool, so connection threads only parse,
//! dispatch, and serialize.
//!
//! Codec negotiation is a one-byte peek: every JSON-lines request starts
//! with `{`, so a client that instead leads with the
//! [`crate::protocol::wire::MAGIC`] byte (plus a version byte) switches
//! the connection to length-prefixed binary frames. Responses in binary
//! mode are encoded into pooled buffers ([`crate::pool::BufferPool`]) and
//! the JSON path serializes straight into the connection's `BufWriter`
//! (no per-response `String`), so neither codec allocates per response in
//! steady state. All sockets run with `TCP_NODELAY`: responses are
//! latency-sensitive single writes, already batched by the `BufWriter`,
//! and Nagle coalescing only adds tail latency.
//!
//! Disconnect policy is *crash-only*: by default a connection that dies
//! has all its still-open sessions closed for it, so abandoned clients
//! cannot leak session slots. A client that sends `detach` first instead
//! gets a capability token, and on disconnect its sessions park under
//! that token (TTL-bounded, still decoding until their queues fill); a
//! new connection presenting the token resumes them byte-identically.
//!
//! Shutdown: the `shutdown` verb (or [`Server::stopper`]) flips a stop
//! flag and self-connects to unblock `accept`; connection reads use the
//! configured [`ServeConfig::read_timeout_ms`] so every thread notices
//! the flag and exits promptly.
//!
//! Chaos: when a [`ChaosPlan`] schedules it, the accept loop numbers
//! connections and the read loop numbers requests, so connection drops
//! and frame corruption land at exact, reproducible coordinates.

#![deny(clippy::unwrap_used)]

use crate::chaos::ChaosPlan;
use crate::engine::{DetachToken, Engine, ServeConfig, ServeHandle, SessionId};
use crate::error::ServeError;
use crate::lifecycle::{Director, FineTuneSpec};
use crate::metrics::StatsSnapshot;
use crate::pool::BufferPool;
use crate::protocol::wire;
use crate::protocol::{ErrorKind, Request, Response, VersionInfo};
use crate::registry::Registry;
use cpt_gpt::{CptGpt, StreamParams};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// TCP server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:9000` (port 0 picks a free port).
    pub addr: String,
    /// Engine + front-end configuration (workers, caps, watermarks, read
    /// timeout, connection cap, detach TTL).
    pub serve: ServeConfig,
    /// Deterministic fault injection; `ChaosPlan::default()` is a no-op.
    pub chaos: ChaosPlan,
    /// Model-registry root directory. `Some` enables the lifecycle verbs
    /// (`publish`/`rollback`/`finetune`/`versions`): the bootstrap model
    /// is imported as the first version if the registry is empty, and the
    /// registry's live version is served otherwise (the `--model` flag is
    /// then only the bootstrap source). `None` keeps the pre-registry
    /// behaviour: serve the given model, lifecycle verbs answer
    /// `no_registry`.
    pub registry: Option<std::path::PathBuf>,
}

impl ServerConfig {
    /// Defaults: the given address, engine defaults for `workers` workers,
    /// no chaos, no registry.
    pub fn new(addr: impl Into<String>, workers: usize) -> Self {
        ServerConfig {
            addr: addr.into(),
            serve: ServeConfig::new(workers),
            chaos: ChaosPlan::default(),
            registry: None,
        }
    }
}

/// A bound, running generation server.
pub struct Server {
    listener: TcpListener,
    engine: Engine,
    director: Option<Arc<Director>>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Decrements the connection count when a connection thread exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Starts the engine and binds the listener. The engine is live (and
    /// the port reachable) when this returns.
    ///
    /// With [`ServerConfig::registry`] set, the registry is opened (and
    /// crash-recovered) first: an empty registry imports `model` as the
    /// first version through the full validation gate; a populated one
    /// serves its durable live version instead, so a restart always comes
    /// back on exactly what the last successful promotion published.
    pub fn bind(model: Arc<CptGpt>, cfg: ServerConfig) -> Result<Server, ServeError> {
        let (engine, director) = match &cfg.registry {
            None => (
                Engine::start_with_chaos(model, cfg.serve, cfg.chaos)?,
                None,
            ),
            Some(root) => {
                let (mut registry, report) = Registry::open_with_chaos(root, cfg.chaos)?;
                let (version, live_model) = if registry.is_empty() {
                    let id = registry.stage(&model, "bootstrap import")?;
                    let validated = registry.validate(id)?;
                    registry.promote(id)?;
                    (id, Arc::new(validated))
                } else {
                    let (id, m) = registry.load_live()?;
                    (id, Arc::new(m))
                };
                let engine = Engine::start_versioned(live_model, version, cfg.serve, cfg.chaos)?;
                for _ in &report.quarantined {
                    engine.handle().note_version_quarantined();
                }
                let director = Director::new(registry, engine.handle(), cfg.chaos)?;
                (engine, Some(Arc::new(director)))
            }
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            engine,
            director,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// A library handle onto the same engine (used by in-process tests).
    pub fn handle(&self) -> ServeHandle {
        self.engine.handle()
    }

    /// The lifecycle director, when the server was bound with a registry
    /// (used by in-process tests and the CLI wait loop).
    pub fn director(&self) -> Option<Arc<Director>> {
        self.director.clone()
    }

    /// A stop trigger usable from another thread: flips the flag and
    /// self-connects to unblock `accept`.
    pub fn stopper(&self) -> impl Fn() + Send + Sync + 'static {
        let stop = Arc::clone(&self.stop);
        let addr = self.listener.local_addr();
        move || {
            stop.store(true, Ordering::SeqCst);
            if let Ok(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
        }
    }

    /// Serves connections until `shutdown` is requested, then drains the
    /// connection threads, stops the engine, and returns the final stats.
    pub fn run(self) -> Result<StatsSnapshot, ServeError> {
        let conns = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        let mut conn_idx: u64 = 0;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Responses are single buffered writes; Nagle only delays them.
            let _ = stream.set_nodelay(true);
            if conns.fetch_add(1, Ordering::SeqCst) >= self.cfg.serve.max_connections {
                conns.fetch_sub(1, Ordering::SeqCst);
                let _ = refuse_connection(stream, self.cfg.serve.max_connections);
                continue;
            }
            let guard = ConnGuard(Arc::clone(&conns));
            let handle = self.engine.handle();
            let director = self.director.clone();
            let stop = Arc::clone(&self.stop);
            let stopper = self.stopper();
            let conn = ConnContext {
                idx: conn_idx,
                chaos: self.cfg.chaos,
                read_timeout: Duration::from_millis(self.cfg.serve.read_timeout_ms),
            };
            conn_idx += 1;
            let spawned = std::thread::Builder::new()
                .name("cpt-serve-conn".to_string())
                .spawn(move || {
                    let _guard = guard;
                    handle_connection(stream, &handle, director.as_deref(), &stop, &stopper, conn);
                });
            match spawned {
                Ok(t) => threads.push(t),
                Err(_) => continue,
            }
        }
        for t in threads {
            let _ = t.join();
        }
        // Join any in-flight fine-tune and flush lifecycle persistence
        // before stopping the engine, so a publish racing shutdown lands
        // durably (or fails typed) rather than being torn off mid-flight.
        if let Some(d) = &self.director {
            d.shutdown();
        }
        let stats = self.engine.handle().stats();
        self.engine.shutdown();
        Ok(stats)
    }
}

fn refuse_connection(stream: TcpStream, cap: usize) -> std::io::Result<()> {
    let mut w = BufWriter::new(stream);
    let resp = Response::Error {
        kind: ErrorKind::Overloaded,
        message: format!("too many connections (cap {cap})"),
    };
    // Refusal happens before codec negotiation, so it is always a JSON
    // line; a binary-mode client sees the connection close mid-frame and
    // retries like any other refused connect.
    write_json_response(&mut w, &resp)
}

/// Serializes a response straight into the connection's `BufWriter` — no
/// intermediate `String`, so steady-state responses don't allocate.
fn write_json_response(w: &mut BufWriter<TcpStream>, resp: &Response) -> std::io::Result<()> {
    serde_json::to_writer(&mut *w, resp).map_err(std::io::Error::other)?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Encodes a response into a pooled frame buffer and writes it as one
/// length-prefixed frame.
fn write_bin_response(
    w: &mut BufWriter<TcpStream>,
    resp: &Response,
    pool: &Arc<BufferPool>,
) -> std::io::Result<()> {
    let mut buf = pool.get();
    wire::encode_response(resp, &mut buf).map_err(std::io::Error::other)?;
    wire::write_frame(w, &buf)?;
    w.flush()
}

/// A reader that retries timeout wakeups (the bounded `SO_RCVTIMEO` used
/// to poll the stop flag) until the stop flag is set — so a binary frame
/// arriving slowly is never torn by a poll timeout, while shutdown still
/// interrupts a blocked read.
struct PatientReader<'a, R> {
    inner: &'a mut R,
    stop: &'a AtomicBool,
}

impl<R: Read> Read for PatientReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server stopping",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// Per-connection context the accept loop hands to the connection thread.
struct ConnContext {
    /// 0-based accept index (the chaos drop coordinate).
    idx: u64,
    chaos: ChaosPlan,
    read_timeout: Duration,
}

/// What this connection owns and how its disconnect should be handled.
struct ConnState {
    /// Sessions opened (or reattached) on this connection.
    owned: HashSet<u64>,
    /// Set once the client arms `detach`: on disconnect, owned sessions
    /// park under this token instead of being closed.
    armed: Option<DetachToken>,
}

/// Serves one client: negotiate the codec off the first byte, then parse
/// a request, dispatch, write a response, repeat until disconnect or
/// shutdown. On exit, sessions the client left open are closed — or
/// parked under the armed detach token.
fn handle_connection(
    stream: TcpStream,
    handle: &ServeHandle,
    director: Option<&Director>,
    stop: &AtomicBool,
    stopper: &(impl Fn() + Send + Sync),
    conn: ConnContext,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Bounded read timeout so the thread re-checks the stop flag even when
    // the client is idle.
    let _ = stream.set_read_timeout(Some(conn.read_timeout));
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut state = ConnState {
        owned: HashSet::new(),
        armed: None,
    };

    // Codec negotiation: peek the first byte. `{` (any JSON-lines
    // request) keeps JSON; the wire MAGIC switches to binary frames.
    let binary = loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.fill_buf() {
            Ok([]) => return, // clean close before the first byte
            Ok(&[first, ..]) => break first == wire::MAGIC,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    };

    if binary {
        reader.consume(1);
        let mut version = [0u8; 1];
        let mut patient = PatientReader {
            inner: &mut reader,
            stop,
        };
        if patient.read_exact(&mut version).is_err() {
            return;
        }
        if let Err(e) = wire::check_version(version[0]) {
            let resp = Response::Error {
                kind: ErrorKind::InvalidRequest,
                message: e.to_string(),
            };
            let pool = BufferPool::for_connection();
            let _ = write_bin_response(&mut writer, &resp, &pool);
            return;
        }
        serve_binary(&mut reader, &mut writer, handle, director, stop, stopper, &conn, &mut state);
    } else {
        serve_json(&mut reader, &mut writer, handle, director, stop, stopper, &conn, &mut state);
    }

    match state.armed {
        Some(token) if !state.owned.is_empty() => {
            handle.park_sessions(token, state.owned.iter().map(|&id| SessionId(id)));
        }
        _ => {
            for id in state.owned.drain() {
                let _ = handle.close_session(SessionId(id));
            }
        }
    }
}

/// The JSON-lines request loop.
#[allow(clippy::too_many_arguments)]
fn serve_json(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    handle: &ServeHandle,
    director: Option<&Director>,
    stop: &AtomicBool,
    stopper: &(impl Fn() + Send + Sync),
    conn: &ConnContext,
    state: &mut ConnState,
) {
    let mut line = String::new();
    let mut req_idx: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // `line` is only cleared after a full line is processed, so a
        // timeout mid-line keeps the partial bytes and resumes.
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                if conn.chaos.should_drop(conn.idx, req_idx) {
                    // Hard drop: no response, no goodbye — exactly what a
                    // network failure looks like to the disconnect path.
                    return;
                }
                conn.chaos.corrupt_line(conn.idx, req_idx, &mut line);
                req_idx += 1;
                let (resp, quit) = match serde_json::from_str(&line) {
                    Ok(req) => dispatch(req, handle, director, state, stopper),
                    Err(e) => (
                        Response::Error {
                            kind: ErrorKind::InvalidRequest,
                            message: format!("bad request line: {e}"),
                        },
                        false,
                    ),
                };
                line.clear();
                if write_json_response(writer, &resp).is_err() || quit {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// The binary-frame request loop. Frame buffers (inbound payload and
/// outbound responses) come from a per-connection pool, so steady-state
/// request/response cycles allocate nothing.
#[allow(clippy::too_many_arguments)]
fn serve_binary(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    handle: &ServeHandle,
    director: Option<&Director>,
    stop: &AtomicBool,
    stopper: &(impl Fn() + Send + Sync),
    conn: &ConnContext,
    state: &mut ConnState,
) {
    let pool = BufferPool::for_connection();
    let mut payload = pool.get();
    let mut req_idx: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut patient = PatientReader {
            inner: reader,
            stop,
        };
        match wire::read_frame(&mut patient, &mut payload) {
            Ok(false) => return, // clean close at a frame boundary
            Ok(true) => {}
            Err(wire::FrameError::Protocol(e)) => {
                // A malformed frame desynchronizes the stream — answer
                // typed, then drop the connection (resync is impossible).
                let resp = Response::Error {
                    kind: ErrorKind::InvalidRequest,
                    message: format!("bad frame: {e}"),
                };
                let _ = write_bin_response(writer, &resp, &pool);
                return;
            }
            Err(wire::FrameError::Io(_)) => return,
        }
        if conn.chaos.should_drop(conn.idx, req_idx) {
            return;
        }
        req_idx += 1;
        let (resp, quit) = match wire::decode_request(&payload) {
            Ok(req) => dispatch(req, handle, director, state, stopper),
            Err(e) => (
                Response::Error {
                    kind: ErrorKind::InvalidRequest,
                    message: format!("bad request frame: {e}"),
                },
                false,
            ),
        };
        if write_bin_response(writer, &resp, &pool).is_err() || quit {
            return;
        }
    }
}

/// Executes one request; returns the response and whether the connection
/// loop should exit afterwards (only for `shutdown`). Codec-agnostic —
/// both the JSON and binary loops feed parsed [`Request`]s here.
fn dispatch(
    req: Request,
    handle: &ServeHandle,
    director: Option<&Director>,
    state: &mut ConnState,
    stopper: &(impl Fn() + Send + Sync),
) -> (Response, bool) {
    match req {
        Request::Open {
            seed,
            streams,
            device,
            max_stream_len,
        } => {
            let device_type = match device.parse() {
                Ok(d) => d,
                Err(_) => {
                    return (
                        Response::Error {
                            kind: ErrorKind::InvalidRequest,
                            message: format!("unknown device type: {device}"),
                        },
                        false,
                    )
                }
            };
            let mut params = StreamParams::new(seed).streams(streams).device(device_type);
            params.max_stream_len = max_stream_len;
            match handle.open_session(params) {
                Ok(id) => {
                    state.owned.insert(id.0);
                    (Response::Opened { session: id.0 }, false)
                }
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Next {
            session,
            max,
            wait_ms,
        } => {
            // Cap the server-side block so one request cannot pin a
            // connection thread for long.
            let wait = Duration::from_millis(wait_ms.min(10_000));
            match handle.next_events(SessionId(session), max, wait) {
                Ok(batch) => (
                    Response::Events {
                        session,
                        events: batch.events,
                        finished: batch.finished,
                    },
                    false,
                ),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Close { session } => match handle.close_session(SessionId(session)) {
            Ok(()) => {
                state.owned.remove(&session);
                (Response::Closed { session }, false)
            }
            Err(e) => (Response::from_error(&e), false),
        },
        Request::Detach => {
            // Re-arming reuses the already-minted token so the client's
            // copy stays valid.
            let token = match state.armed {
                Some(t) => t,
                None => {
                    let t = handle.mint_detach_token();
                    state.armed = Some(t);
                    t
                }
            };
            (
                Response::Detached {
                    token: token.to_string(),
                },
                false,
            )
        }
        Request::Reattach { token } => {
            let parsed: Result<DetachToken, _> = token.parse();
            match parsed.and_then(|t| handle.reattach(t)) {
                Ok(ids) => {
                    let sessions: Vec<u64> = ids.iter().map(|id| id.0).collect();
                    state.owned.extend(sessions.iter().copied());
                    (Response::Reattached { sessions }, false)
                }
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Drain { timeout_ms } => {
            // Cap the deadline so a typo cannot pin a connection thread
            // (and therefore a drain) for hours.
            let report = handle.drain(Duration::from_millis(timeout_ms.min(600_000)));
            (
                Response::Drained {
                    completed: report.completed,
                    force_failed: report.force_failed,
                },
                false,
            )
        }
        Request::Stats => (
            Response::Stats {
                stats: Box::new(handle.stats()),
            },
            false,
        ),
        Request::Publish { path, version } => {
            let Some(d) = director else {
                return (Response::from_error(&ServeError::NoRegistry), false);
            };
            let result = match (path, version) {
                (Some(p), None) => d.publish_path(std::path::Path::new(&p)),
                (None, Some(v)) => d.publish_version(v),
                _ => {
                    return (
                        Response::Error {
                            kind: ErrorKind::InvalidRequest,
                            message: "publish takes exactly one of `path` or `version`"
                                .to_string(),
                        },
                        false,
                    )
                }
            };
            match result {
                Ok(out) => (
                    Response::Published {
                        version: out.version,
                        previous: out.previous,
                    },
                    false,
                ),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Rollback => {
            let Some(d) = director else {
                return (Response::from_error(&ServeError::NoRegistry), false);
            };
            match d.rollback() {
                Ok((demoted, live)) => (Response::RolledBack { demoted, live }, false),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Finetune {
            trace,
            epochs,
            seed,
        } => {
            let Some(d) = director else {
                return (Response::from_error(&ServeError::NoRegistry), false);
            };
            match d.finetune(FineTuneSpec {
                trace,
                epochs,
                seed,
            }) {
                Ok(job) => (Response::FinetuneStarted { job }, false),
                Err(e) => (Response::from_error(&e), false),
            }
        }
        Request::Versions => {
            let Some(d) = director else {
                return (Response::from_error(&ServeError::NoRegistry), false);
            };
            let (live, records, last_finetune_error) = d.versions();
            let per_version = handle.sessions_per_version();
            let versions = records
                .into_iter()
                .map(|r| {
                    let sessions = per_version
                        .iter()
                        .find(|(v, _)| *v == r.id)
                        .map(|(_, n)| *n)
                        .unwrap_or(0);
                    VersionInfo {
                        id: r.id,
                        state: r.state,
                        sessions,
                        note: r.note,
                    }
                })
                .collect();
            (
                Response::Versions {
                    live,
                    versions,
                    last_finetune_error,
                },
                false,
            )
        }
        Request::Shutdown => {
            stopper();
            (Response::Bye, true)
        }
    }
}

/// Binds and runs a server to completion (the `cptgen serve` entry point).
/// `on_ready` receives the bound address before the accept loop starts —
/// the CLI prints its "listening on" line from it.
pub fn serve(
    model: Arc<CptGpt>,
    cfg: ServerConfig,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<StatsSnapshot, ServeError> {
    let server = Server::bind(model, cfg)?;
    on_ready(server.local_addr()?);
    server.run()
}
