//! The sharded continuous-batching serving engine.
//!
//! The engine is N shared-nothing shards (see [`crate::shard`]), each a
//! complete scheduler: its own sessions, run queue, decode workers, KV
//! free-list, and latency counters. An `open` is steered to a shard by a
//! stable hash of its seed and open ordinal, and the shard index is
//! encoded in the low bits of the session id (see [`crate::steer`]), so
//! every later verb routes with a mask — the hot path never takes a lock
//! shared between shards. What remains engine-wide is cold: the model
//! lifecycle (install/promote/rollback/retire), the detach-token map and
//! its reaper, drain, and a pair of relaxed-atomic admission gauges.
//!
//! **Backpressure** is two-level. Per session: a bounded event queue; a
//! session whose consumer lags is *parked* (not re-enqueued) until
//! `next_events` drains below capacity, so a slow reader costs nothing but
//! its own queue memory. Globally: admission control sheds `open_session`
//! with [`ServeError::Overloaded`] once the session cap or the total
//! queued-events watermark is hit — the cap is enforced by an atomic
//! reservation, so it stays strict without a global lock.
//!
//! **Crash-only**: each worker's decode slice runs under `catch_unwind`. A
//! panic fails *only the session being advanced* — its consumer receives
//! the already-decoded prefix of the slice followed by a terminal
//! [`SessionEvent::Failed`], the worker re-enters its loop, and the panic
//! is counted. Shard mutexes recover from poisoning, so a panicking slice
//! can never wedge a scheduler. Failure is in-band data, not process
//! death.
//!
//! **Drain**: [`ServeHandle::drain`] stops admission (typed
//! [`ServeError::Draining`]), lets live sessions finish decoding, and
//! force-fails the stragglers at the deadline — the primitive a hot-swap
//! model registry needs (quiesce, swap, resume).
//!
//! **Detach/reattach**: a connection front end can park its sessions under
//! a capability token ([`DetachToken`]) instead of closing them on
//! disconnect. Parked sessions keep decoding until their bounded queue
//! fills (the normal backpressure path), and a client presenting the token
//! within the TTL resumes exactly where delivery stopped — byte-identical
//! to an undisturbed run. A reaper thread reclaims expired tokens.
//!
//! **Versions under sharding**: every shard holds a replica of each
//! installed version's weight Arcs plus a *shard-local* pin refcount; the
//! engine's lifecycle lock owns the live/previous designation and sweeps
//! a retired version only when the refcounts sum to zero across shards.
//! Shards check "retired?" through a shared atomic flag, so the steady-
//! state close path never touches the lifecycle lock. Lock order is
//! strictly engine (lifecycle or detach) → shard; shards call upward
//! (divergence trip-wire) only after dropping their own lock.
//!
//! **Determinism**: a session's event sequence is a pure function of
//! `(model, StreamParams)`. Each shard guarantees at most one worker ever
//! holds a session's decoder, each session owns its RNG, and free-list
//! reuse is byte-equivalent to fresh allocation — so output is
//! bit-identical at any shard count × worker count, including 1×1. Which
//! shard a session lands on cannot influence its bytes.
//!
//! **Allocation**: steady-state serving is allocation-free per event. All
//! decode buffers live in the session's `DecodeState` (recycled through a
//! per-shard free-list on close); each worker reuses one slice buffer;
//! per-session queues only grow to the configured capacity once.

#![deny(clippy::unwrap_used)]

use crate::chaos::ChaosPlan;
use crate::error::ServeError;
use crate::metrics::{Metrics, SnapshotGauges, StatsSnapshot};
use crate::shard::{worker_loop, Gauges, ShardShared, ShardUplink, VersionMeta};
use crate::steer::{splitmix64, Steering, MAX_SHARDS};
use cpt_gpt::{CptGpt, StreamParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

/// The decoded event type produced by the model layer.
pub type DecodedEvent = cpt_gpt::SessionEvent;

/// One event delivered to a session consumer: either decoded data or the
/// terminal record of a contained failure.
///
/// On the wire a data event serializes exactly as before (untagged), so
/// clients that predate failure containment keep parsing; a failure
/// serializes as `{"reason": "..."}`, which no data event can produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum SessionEvent {
    /// A decoded control-plane event.
    Data(DecodedEvent),
    /// Terminal: the session died to a contained fault (worker panic or
    /// drain force-fail). No further events will ever arrive after this.
    Failed {
        /// Human-readable cause (panic payload or drain deadline note).
        reason: String,
    },
}

impl SessionEvent {
    /// The decoded event, if this is a data event.
    pub fn data(&self) -> Option<&DecodedEvent> {
        match self {
            SessionEvent::Data(ev) => Some(ev),
            SessionEvent::Failed { .. } => None,
        }
    }

    /// The failure reason, if this is a terminal failure record.
    pub fn failure(&self) -> Option<&str> {
        match self {
            SessionEvent::Data(_) => None,
            SessionEvent::Failed { reason } => Some(reason),
        }
    }

    /// True for the terminal failure record.
    pub fn is_failure(&self) -> bool {
        matches!(self, SessionEvent::Failed { .. })
    }
}

impl From<DecodedEvent> for SessionEvent {
    fn from(ev: DecodedEvent) -> Self {
        SessionEvent::Data(ev)
    }
}

/// Serving-engine configuration (plus the front-end knobs the TCP server
/// reads from the same validated struct: read timeout, connection cap,
/// detach TTL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Decode worker threads, divided across shards (each shard gets at
    /// least one).
    pub workers: usize,
    /// Independent shared-nothing engine shards. 1 reproduces the
    /// unsharded engine exactly, including its session-id sequence.
    pub shards: usize,
    /// Admission cap on concurrently open sessions (global, across
    /// shards).
    pub max_sessions: usize,
    /// Bound on each session's undelivered-event queue; a full queue parks
    /// the session until its consumer drains.
    pub queue_capacity: usize,
    /// Maximum events a worker decodes for one session per scheduling
    /// slice before re-enqueueing it (fairness knob).
    pub slice_budget: usize,
    /// Global admission watermark on total queued events across sessions.
    pub queue_watermark: usize,
    /// How long a detach token keeps parked sessions alive before the
    /// reaper reclaims them (seconds).
    pub detach_ttl_secs: u64,
    /// Connection-thread read timeout (ms); bounds how long a server
    /// thread can miss the stop flag while a client idles.
    pub read_timeout_ms: u64,
    /// Concurrent connection cap for the TCP front end; excess connections
    /// get one error line and are dropped.
    pub max_connections: usize,
    /// Decode runnable sessions in cross-session batches (one packed
    /// per-layer GEMM over all sessions a worker holds) instead of one
    /// session at a time. Output is bit-identical either way; batching is
    /// purely a throughput optimization.
    pub batch_decode: bool,
    /// Maximum sessions one worker stacks into a single batched forward
    /// pass (ignored when `batch_decode` is off).
    pub batch_max: usize,
    /// Decode through int8 per-channel-quantized weights (approximate —
    /// no bit-identity claim; see DESIGN.md §15). Requires `batch_decode`.
    pub quantized: bool,
}

impl ServeConfig {
    /// Defaults tuned for a small host: `workers` decode threads, one
    /// shard, a 4096-session cap, 256-event queues, 64-event slices, 60 s
    /// detach TTL, 200 ms read timeout, 256 connections.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers,
            shards: 1,
            max_sessions: 4096,
            queue_capacity: 256,
            slice_budget: 64,
            queue_watermark: 1 << 20,
            detach_ttl_secs: 60,
            read_timeout_ms: 200,
            max_connections: 256,
            batch_decode: true,
            batch_max: 64,
            quantized: false,
        }
    }

    /// Checks every field against its domain, returning the first
    /// violation as [`ServeError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), ServeError> {
        fn bad(field: &str, message: impl Into<String>) -> ServeError {
            ServeError::InvalidConfig {
                field: field.to_string(),
                message: message.into(),
            }
        }
        if self.workers == 0 {
            return Err(bad("workers", "must be at least 1"));
        }
        if self.shards == 0 {
            return Err(bad("shards", "must be at least 1"));
        }
        if self.shards > MAX_SHARDS {
            return Err(bad(
                "shards",
                format!("must be at most {MAX_SHARDS}, got {}", self.shards),
            ));
        }
        if self.max_sessions == 0 {
            return Err(bad("max_sessions", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(bad("queue_capacity", "must be at least 1"));
        }
        if self.slice_budget == 0 {
            return Err(bad("slice_budget", "must be at least 1"));
        }
        if self.queue_watermark < self.queue_capacity {
            return Err(bad(
                "queue_watermark",
                format!(
                    "must be at least queue_capacity ({}), got {}",
                    self.queue_capacity, self.queue_watermark
                ),
            ));
        }
        if self.detach_ttl_secs == 0 {
            return Err(bad("detach_ttl_secs", "must be at least 1"));
        }
        if self.read_timeout_ms == 0 {
            return Err(bad(
                "read_timeout_ms",
                "must be at least 1 (0 would never re-check the stop flag)",
            ));
        }
        if self.max_connections == 0 {
            return Err(bad("max_connections", "must be at least 1"));
        }
        if self.batch_decode && self.batch_max == 0 {
            return Err(bad("batch_max", "must be at least 1"));
        }
        if self.quantized && !self.batch_decode {
            return Err(bad(
                "quantized",
                "requires batch_decode (the sequential path has no quantized kernels)",
            ));
        }
        Ok(())
    }
}

/// Opaque session identifier handed out by [`ServeHandle::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// A capability for reclaiming detached sessions: 128 bits, unguessable,
/// single-use. Printed/parsed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetachToken(pub u128);

impl std::fmt::Display for DetachToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::str::FromStr for DetachToken {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u128::from_str_radix(s.trim(), 16)
            .map(DetachToken)
            .map_err(|_| ServeError::UnknownToken)
    }
}

/// What a drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainReport {
    /// Sessions that finished decoding (or were closed by their consumer)
    /// within the deadline.
    pub completed: u64,
    /// Stragglers force-failed at the deadline (each delivered a terminal
    /// [`SessionEvent::Failed`]).
    pub force_failed: u64,
}

/// Events delivered by one [`ServeHandle::next_events`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// Events in decode order (possibly empty if the wait timed out).
    pub events: Vec<SessionEvent>,
    /// True once the session's decode is complete *and* its queue is fully
    /// drained; no further events will ever arrive.
    pub finished: bool,
}

/// Sessions parked under one detach token.
struct ParkedGroup {
    sessions: Vec<u64>,
    expires_at: Instant,
}

/// Out-of-band model-lifecycle notifications from the engine. Emitted via
/// the hook installed with [`ServeHandle::set_lifecycle_hook`], which the
/// registry director uses to persist engine-initiated transitions.
///
/// The hook may be invoked while engine-internal locks are held, so it
/// must never call back into the engine and should hand the event to a
/// queue rather than doing blocking work inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The last pinned session on a demoted version ended and the engine
    /// freed its in-memory weights.
    Retired(u64),
    /// The serve-time divergence trip-wire (a non-finite decoded event)
    /// demoted the live version and re-promoted the previous one without
    /// a restart.
    TripWire {
        /// The version that produced the divergent event.
        demoted: u64,
        /// The version that is live again.
        restored: u64,
    },
}

/// Observer callback for engine-initiated lifecycle transitions.
type LifecycleHook = Box<dyn Fn(LifecycleEvent) + Send + Sync>;

/// The engine-wide half of the version lifecycle. `versions` mirrors the
/// replica maps on every shard; `live`/`previous` are authoritative here
/// and copied down to shards under this lock.
struct LifecycleState {
    live: u64,
    previous: Option<u64>,
    versions: HashMap<u64, Arc<VersionMeta>>,
}

/// Detached session groups keyed by capability token.
struct DetachState {
    parked: HashMap<u128, ParkedGroup>,
}

/// Everything the engine owns above the shards. Shards hold a `Weak` to
/// this (as `dyn ShardUplink`) for the divergence trip-wire.
struct EngineCore {
    cfg: ServeConfig,
    steer: Steering,
    shards: Vec<Arc<ShardShared>>,
    gauges: Arc<Gauges>,
    shutdown: Arc<AtomicBool>,
    /// Admission is suspended (drain in progress or completed).
    draining: AtomicBool,
    /// Engine-level counters (shed/detach/lifecycle); shard counters merge
    /// in at snapshot time.
    metrics: Metrics,
    lifecycle: Mutex<LifecycleState>,
    detach: Mutex<DetachState>,
    /// The token reaper waits here between expiries.
    reaper: Condvar,
    /// Nonce folded into detach-token minting.
    token_nonce: AtomicU64,
    /// Monotone open counter fed to the steering hash.
    open_ordinal: AtomicU64,
    /// Observer for engine-initiated lifecycle transitions (see
    /// [`LifecycleEvent`]).
    lifecycle_hook: Mutex<Option<LifecycleHook>>,
}

impl EngineCore {
    fn lock_lifecycle(&self) -> MutexGuard<'_, LifecycleState> {
        match self.lifecycle.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_detach(&self) -> MutexGuard<'_, DetachState> {
        match self.detach.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Routes a session id to its owning shard, rejecting ids whose shard
    /// bits name a shard that does not exist.
    fn shard_for(&self, id: u64) -> Result<&Arc<ShardShared>, ServeError> {
        self.steer
            .shard_of(id)
            .map(|i| &self.shards[i])
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Invokes the lifecycle hook for each event. The hook contract (see
    /// [`LifecycleEvent`]) makes this safe to call from any engine path:
    /// the hook must be non-blocking and never re-enter the engine.
    fn emit_lifecycle(&self, events: impl IntoIterator<Item = LifecycleEvent>) {
        let hook = match self.lifecycle_hook.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(h) = hook.as_ref() {
            for ev in events {
                h(ev);
            }
        }
    }

    /// Frees a demoted version once nothing references it anywhere: zero
    /// pinned sessions summed across shards, marked retired, not live, not
    /// the rollback target. Caller holds the lifecycle lock.
    fn sweep_locked(&self, lc: &mut LifecycleState, version: u64) -> Option<LifecycleEvent> {
        let retired = lc
            .versions
            .get(&version)
            .map(|m| m.retired.load(Ordering::Relaxed))
            .unwrap_or(false);
        if !retired || lc.live == version || lc.previous == Some(version) {
            return None;
        }
        let total: u64 = self.shards.iter().map(|s| s.version_refs(version)).sum();
        if total != 0 {
            return None;
        }
        for s in &self.shards {
            s.remove_version_entry(version);
        }
        lc.versions.remove(&version);
        self.metrics.inc_version_retired();
        Some(LifecycleEvent::Retired(version))
    }

    /// A shard reported its last pin on a retired version dropped: try the
    /// engine-wide sweep. Idempotent and race-tolerant — if another close
    /// is still in flight the sum stays nonzero and that close retries.
    fn maybe_sweep(&self, version: u64) {
        let ev = {
            let mut lc = self.lock_lifecycle();
            self.sweep_locked(&mut lc, version)
        };
        self.emit_lifecycle(ev);
    }

    /// Mints a fresh, unregistered capability token. Uniqueness against
    /// live tokens is checked under the detach lock; unguessability comes
    /// from 128 bits of splitmix64-mixed wall-clock + nonce.
    fn mint_locked(&self, dt: &DetachState) -> DetachToken {
        loop {
            let nonce = self.token_nonce.fetch_add(1, Ordering::Relaxed);
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let hi = splitmix64(now ^ nonce.rotate_left(17));
            let lo = splitmix64(hi ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let token = ((hi as u128) << 64) | lo as u128;
            if token != 0 && !dt.parked.contains_key(&token) {
                return DetachToken(token);
            }
        }
    }

    /// Reclaims one parked group's sessions (TTL expiry), returning how
    /// many were reclaimed. Sweeps any versions whose last pin dropped.
    fn reap_group(&self, group: ParkedGroup) -> u64 {
        let mut reclaimed = 0u64;
        let mut sweeps: Vec<u64> = Vec::new();
        for id in group.sessions {
            let Ok(shard) = self.shard_for(id) else {
                continue;
            };
            if let Some(out) = shard.reap_detached(id) {
                reclaimed += 1;
                if out.sweep_candidate {
                    sweeps.push(out.version);
                }
            }
        }
        self.metrics.add_expired(reclaimed);
        sweeps.sort_unstable();
        sweeps.dedup();
        for v in sweeps {
            self.maybe_sweep(v);
        }
        reclaimed
    }
}

impl ShardUplink for EngineCore {
    /// The automatic divergence trip-wire: a worker observed a non-finite
    /// event decoded by `version`. If that version is still live and a
    /// previous version is retained, demote it and re-promote the previous
    /// one in-engine — no restart, no operator.
    fn trip_divergence(&self, version: u64) {
        let events = {
            let mut lc = self.lock_lifecycle();
            if lc.live != version {
                return;
            }
            let Some(prev) = lc.previous else {
                return;
            };
            if !lc.versions.contains_key(&prev) {
                return;
            }
            if let Some(m) = lc.versions.get(&version) {
                m.retired.store(true, Ordering::Relaxed);
            }
            if let Some(m) = lc.versions.get(&prev) {
                m.retired.store(false, Ordering::Relaxed);
            }
            lc.live = prev;
            lc.previous = None;
            for s in &self.shards {
                s.set_versions(prev, None);
            }
            self.metrics.inc_version_rolled_back();
            let mut events = vec![LifecycleEvent::TripWire {
                demoted: version,
                restored: prev,
            }];
            events.extend(self.sweep_locked(&mut lc, version));
            events
        };
        self.emit_lifecycle(events);
    }
}

/// The serving engine: owns the per-shard worker pools and the token
/// reaper. Obtain a [`ServeHandle`] via [`Engine::handle`] to open and
/// drive sessions; drop (or [`Engine::shutdown`]) to stop the workers.
pub struct Engine {
    core: Arc<EngineCore>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Validates `cfg`, spawns the worker pool, and returns the running
    /// engine.
    pub fn start(model: Arc<CptGpt>, cfg: ServeConfig) -> Result<Engine, ServeError> {
        Engine::start_with_chaos(model, cfg, ChaosPlan::default())
    }

    /// [`Engine::start`] with a chaos plan wired into the decode loop.
    /// The model is installed as version 1.
    pub fn start_with_chaos(
        model: Arc<CptGpt>,
        cfg: ServeConfig,
        chaos: ChaosPlan,
    ) -> Result<Engine, ServeError> {
        Engine::start_versioned(model, 1, cfg, chaos)
    }

    /// [`Engine::start_with_chaos`] with an explicit id for the initial
    /// model version — the registry front end passes the live version id
    /// recovered from disk so engine and manifest agree from the first
    /// session.
    pub fn start_versioned(
        model: Arc<CptGpt>,
        version: u64,
        cfg: ServeConfig,
        chaos: ChaosPlan,
    ) -> Result<Engine, ServeError> {
        cfg.validate()?;
        let quant = if cfg.quantized {
            Some(Arc::new(model.quantize_decode_weights()))
        } else {
            None
        };
        let steer = Steering::new(cfg.shards);
        let gauges = Arc::new(Gauges::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let meta = Arc::new(VersionMeta {
            retired: AtomicBool::new(false),
        });
        let core = Arc::new_cyclic(|weak: &Weak<EngineCore>| {
            let uplink: Weak<dyn ShardUplink> = weak.clone();
            let shards: Vec<Arc<ShardShared>> = (0..cfg.shards)
                .map(|i| {
                    // Divide the worker budget across shards, at least one
                    // each (so shards > workers still all make progress).
                    let workers = (cfg.workers / cfg.shards
                        + usize::from(i < cfg.workers % cfg.shards))
                    .max(1);
                    Arc::new(ShardShared::new(
                        cfg,
                        i,
                        workers,
                        steer,
                        chaos,
                        Arc::clone(&gauges),
                        Arc::clone(&shutdown),
                        uplink.clone(),
                        version,
                    ))
                })
                .collect();
            let mut versions = HashMap::new();
            versions.insert(version, Arc::clone(&meta));
            EngineCore {
                cfg,
                steer,
                shards,
                gauges,
                shutdown,
                draining: AtomicBool::new(false),
                metrics: Metrics::new(),
                lifecycle: Mutex::new(LifecycleState {
                    live: version,
                    previous: None,
                    versions,
                }),
                detach: Mutex::new(DetachState {
                    parked: HashMap::new(),
                }),
                reaper: Condvar::new(),
                token_nonce: AtomicU64::new(0x5EED),
                lifecycle_hook: Mutex::new(None),
                open_ordinal: AtomicU64::new(0),
            }
        });
        // Workers are not running yet, so this install cannot race.
        for s in &core.shards {
            s.install_entry(version, Arc::clone(&model), quant.clone(), Arc::clone(&meta));
        }
        let spawn_err = |e: std::io::Error| ServeError::InvalidConfig {
            field: "workers".to_string(),
            message: format!("cannot spawn engine thread: {e}"),
        };
        let mut threads = Vec::new();
        for s in &core.shards {
            for w in 0..s.workers {
                let shard = Arc::clone(s);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("cpt-serve-s{}-w{w}", shard.idx))
                        .spawn(move || worker_loop(&shard))
                        .map_err(spawn_err)?,
                );
            }
        }
        let reaper_core = Arc::clone(&core);
        threads.push(
            std::thread::Builder::new()
                .name("cpt-serve-reaper".to_string())
                .spawn(move || reaper_loop(&reaper_core))
                .map_err(spawn_err)?,
        );
        Ok(Engine { core, threads })
    }

    /// A cloneable handle for opening and driving sessions.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Stops the workers and joins them. Open sessions are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// See [`ServeHandle::drain`].
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        self.handle().drain(timeout)
    }

    fn shutdown_inner(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        for s in &self.core.shards {
            s.notify_all();
        }
        self.core.reaper.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Cloneable front end to a running [`Engine`]. All methods are safe to
/// call from any number of threads concurrently.
#[derive(Clone)]
pub struct ServeHandle {
    core: Arc<EngineCore>,
}

impl ServeHandle {
    /// Admits a new session, or sheds it with [`ServeError::Overloaded`]
    /// when the session cap or queued-events watermark is exceeded.
    /// While the engine drains, admission fails with
    /// [`ServeError::Draining`] instead.
    ///
    /// Admission is a lock-free atomic reservation on the global open
    /// gauge (strict cap) plus a relaxed read of the queued-events gauge
    /// (watermark); the admitted session is then steered to a shard by a
    /// stable hash of (seed, open ordinal). The session's decode state
    /// comes from the shard's free-list when one is available, so
    /// steady-state open/close cycles allocate nothing.
    pub fn open_session(&self, params: StreamParams) -> Result<SessionId, ServeError> {
        let core = &self.core;
        if core.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if core.draining.load(Ordering::SeqCst) {
            return Err(ServeError::Draining);
        }
        let open = core.gauges.open.fetch_add(1, Ordering::Relaxed);
        let queued = core.gauges.queued.load(Ordering::Relaxed);
        if open >= core.cfg.max_sessions || queued >= core.cfg.queue_watermark {
            core.gauges.open.fetch_sub(1, Ordering::Relaxed);
            core.metrics.inc_shed();
            return Err(ServeError::Overloaded {
                open,
                cap: core.cfg.max_sessions,
                queued,
                watermark: core.cfg.queue_watermark,
            });
        }
        let ordinal = core.open_ordinal.fetch_add(1, Ordering::Relaxed);
        let shard = &core.shards[core.steer.steer(params.seed, ordinal)];
        match shard.open_session(params) {
            Ok(id) => Ok(SessionId(id)),
            Err(e) => {
                // Back the admission reservation out; the session never
                // existed.
                core.gauges.open.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Delivers up to `max` decoded events in order, blocking up to `wait`
    /// while the queue is empty and the session is still decoding. Returns
    /// `finished = true` once decode is complete and the queue is drained.
    /// A session that died to a contained fault delivers its decoded
    /// prefix followed by one terminal [`SessionEvent::Failed`].
    ///
    /// Draining a parked session re-enqueues it — this is the consumer
    /// half of the per-session backpressure loop.
    pub fn next_events(
        &self,
        id: SessionId,
        max: usize,
        wait: Duration,
    ) -> Result<EventBatch, ServeError> {
        self.core.shard_for(id.0)?.next_events(id.0, max, wait)
    }

    /// Closes a session, recycling its decode buffers into its shard's
    /// free-list. Undelivered events are discarded.
    pub fn close_session(&self, id: SessionId) -> Result<(), ServeError> {
        let outcome = self.core.shard_for(id.0)?.close_session(id.0)?;
        if outcome.sweep_candidate {
            self.core.maybe_sweep(outcome.version);
        }
        Ok(())
    }

    /// Mints a fresh detach capability and registers it (with an empty
    /// session group) so the TTL clock starts now. The TCP front end calls
    /// this when a client *arms* detach-on-disconnect, so the token exists
    /// on the client side before any disconnect can happen.
    pub fn mint_detach_token(&self) -> DetachToken {
        let core = &self.core;
        let token = {
            let mut dt = core.lock_detach();
            let token = core.mint_locked(&dt);
            let expires_at = Instant::now() + Duration::from_secs(core.cfg.detach_ttl_secs);
            dt.parked.insert(
                token.0,
                ParkedGroup {
                    sessions: Vec::new(),
                    expires_at,
                },
            );
            token
        };
        core.reaper.notify_all();
        token
    }

    /// Parks `ids` under `token` (refreshing its TTL), detaching them from
    /// delivery until [`ServeHandle::reattach`] presents the token again.
    /// Parked sessions keep decoding until their bounded queue fills.
    /// Unknown or already-detached ids are skipped (the disconnect path
    /// races with closes); returns how many sessions were parked.
    pub fn park_sessions(
        &self,
        token: DetachToken,
        ids: impl IntoIterator<Item = SessionId>,
    ) -> usize {
        let core = &self.core;
        let mut parked: Vec<u64> = Vec::new();
        for id in ids {
            if let Ok(shard) = core.shard_for(id.0) {
                if shard.mark_detached(id.0) {
                    parked.push(id.0);
                }
            }
        }
        let n = parked.len();
        {
            let mut dt = core.lock_detach();
            if parked.is_empty() {
                // Nothing survived to park; the armed placeholder (if any)
                // is useless now.
                dt.parked.remove(&token.0);
            } else {
                let expires_at =
                    Instant::now() + Duration::from_secs(core.cfg.detach_ttl_secs);
                dt.parked.insert(
                    token.0,
                    ParkedGroup {
                        sessions: parked,
                        expires_at,
                    },
                );
            }
        }
        core.reaper.notify_all();
        core.metrics.add_detached(n as u64);
        n
    }

    /// Convenience for library users: mint a token and park `ids` under it
    /// in one call. Fails with [`ServeError::UnknownSession`] (parking
    /// nothing) if any id is not an open, attached session.
    pub fn detach_sessions(&self, ids: &[SessionId]) -> Result<DetachToken, ServeError> {
        for id in ids {
            let attached = self
                .core
                .shard_for(id.0)
                .map(|s| s.is_attached_open(id.0))
                .unwrap_or(false);
            if !attached {
                return Err(ServeError::UnknownSession(id.0));
            }
        }
        let token = self.mint_detach_token();
        self.park_sessions(token, ids.iter().copied());
        Ok(token)
    }

    /// Redeems a detach token: the parked sessions re-attach (delivery
    /// resumes exactly where it stopped) and the token dies. Fails with
    /// [`ServeError::UnknownToken`] when the token was never minted,
    /// already redeemed, or expired.
    pub fn reattach(&self, token: DetachToken) -> Result<Vec<SessionId>, ServeError> {
        let core = &self.core;
        let group = {
            let mut dt = core.lock_detach();
            match dt.parked.remove(&token.0) {
                Some(g) if g.expires_at > Instant::now() => g,
                Some(expired) => {
                    // Expired but not yet reaped: reclaim now, token is
                    // dead.
                    drop(dt);
                    core.reap_group(expired);
                    return Err(ServeError::UnknownToken);
                }
                None => return Err(ServeError::UnknownToken),
            }
        };
        let mut ids = Vec::with_capacity(group.sessions.len());
        for id in group.sessions {
            let reattached = core
                .shard_for(id)
                .map(|s| s.clear_detached(id))
                .unwrap_or(false);
            if reattached {
                ids.push(SessionId(id));
            }
        }
        core.metrics.add_reattached(ids.len() as u64);
        Ok(ids)
    }

    /// Stops admission ([`ServeError::Draining`]) and waits for live
    /// sessions to finish decoding. Stragglers still decoding at the
    /// deadline — including detached sessions nobody reattached — are
    /// force-failed: each gets a terminal [`SessionEvent::Failed`] and
    /// counts in [`DrainReport::force_failed`]. Delivery of already-decoded
    /// events continues after the drain; admission stays suspended until
    /// [`ServeHandle::resume_admission`].
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        let core = &self.core;
        core.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        let initial: u64 = core.shards.iter().map(|s| s.unclosed_count()).sum();
        loop {
            let unfinished = core.shards.iter().any(|s| s.has_undone());
            if !unfinished || core.shutdown.load(Ordering::SeqCst) {
                return DrainReport {
                    completed: initial,
                    force_failed: 0,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Bounded poll slices across N shards (each shard has its own
            // delivery condvar, so a single engine-wide wait is not
            // possible; 10 ms keeps drain latency negligible next to the
            // typical multi-second timeout).
            std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
        }
        // Deadline: force-fail everything still decoding.
        let force_failed: u64 = core.shards.iter().map(|s| s.force_fail_undone()).sum();
        DrainReport {
            completed: initial.saturating_sub(force_failed),
            force_failed,
        }
    }

    /// Re-opens admission after a drain (the hot-swap "resume" half).
    pub fn resume_admission(&self) {
        self.core.draining.store(false, Ordering::SeqCst);
    }

    /// True while admission is suspended by a drain.
    pub fn is_draining(&self) -> bool {
        self.core.draining.load(Ordering::SeqCst)
    }

    /// Sessions currently open (the global admission gauge).
    pub fn sessions_open(&self) -> usize {
        self.core.gauges.open.load(Ordering::Relaxed)
    }

    /// A point-in-time stats snapshot: engine-level counters plus every
    /// shard's counters merged (histograms bucket-wise, peaks by max),
    /// with per-shard occupancy for the imbalance stats.
    pub fn stats(&self) -> StatsSnapshot {
        let core = &self.core;
        let mut per_version: HashMap<u64, u64> = HashMap::new();
        let mut occupancy: Vec<(u64, u64)> = Vec::with_capacity(core.shards.len());
        let mut free = 0usize;
        let mut workers = 0usize;
        for s in &core.shards {
            for (v, refs) in s.per_version_refs() {
                *per_version.entry(v).or_insert(0) += refs;
            }
            let (open, runnable, free_states) = s.occupancy();
            occupancy.push((open as u64, runnable as u64));
            free += free_states;
            workers += s.workers;
        }
        let mut per_version: Vec<(u64, u64)> = per_version.into_iter().collect();
        per_version.sort_unstable();
        let live = core.lock_lifecycle().live;
        let merged = Metrics::merged(&core.metrics, core.shards.iter().map(|s| &s.metrics));
        merged.snapshot(
            SnapshotGauges {
                sessions_open: core.gauges.open.load(Ordering::Relaxed),
                queued_events: core.gauges.queued.load(Ordering::Relaxed),
                free_states: free,
                workers,
                live_version: live,
            },
            &per_version,
            &occupancy,
        )
    }

    /// True once the engine refuses new work.
    pub fn is_shutting_down(&self) -> bool {
        self.core.shutdown.load(Ordering::SeqCst)
    }

    /// The model version new sessions currently open on.
    pub fn live_version(&self) -> u64 {
        self.core.lock_lifecycle().live
    }

    /// Installed versions and their pinned-session counts (summed across
    /// shards), sorted by id.
    pub fn sessions_per_version(&self) -> Vec<(u64, u64)> {
        let mut per_version: HashMap<u64, u64> = HashMap::new();
        for s in &self.core.shards {
            for (v, refs) in s.per_version_refs() {
                *per_version.entry(v).or_insert(0) += refs;
            }
        }
        let mut v: Vec<(u64, u64)> = per_version.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Installs `model` under version `id` without promoting it: sessions
    /// cannot open on it until [`ServeHandle::promote_version`]. Idempotent
    /// when the id is already installed. Quantized decode weights are built
    /// here (outside every engine lock) when the engine runs quantized,
    /// then the same Arcs are replicated to every shard.
    pub fn install_version(&self, id: u64, model: Arc<CptGpt>) {
        let quant = if self.core.cfg.quantized {
            Some(Arc::new(model.quantize_decode_weights()))
        } else {
            None
        };
        let mut lc = self.core.lock_lifecycle();
        let meta = Arc::clone(lc.versions.entry(id).or_insert_with(|| {
            Arc::new(VersionMeta {
                retired: AtomicBool::new(false),
            })
        }));
        // Fan out under the lifecycle lock so a concurrent promote cannot
        // observe the version installed engine-side but missing on a
        // shard.
        for s in &self.core.shards {
            s.install_entry(id, Arc::clone(&model), quant.clone(), Arc::clone(&meta));
        }
    }

    /// Removes an installed-but-never-promoted version (the cleanup path
    /// when a registry promotion fails after the engine install). Refuses
    /// — returning `false` — when the version is live, is the rollback
    /// target, or has pinned sessions on any shard.
    pub fn uninstall_version(&self, id: u64) -> bool {
        let core = &self.core;
        let mut lc = core.lock_lifecycle();
        if !lc.versions.contains_key(&id) || lc.live == id || lc.previous == Some(id) {
            return false;
        }
        let total: u64 = core.shards.iter().map(|s| s.version_refs(id)).sum();
        if total != 0 {
            return false;
        }
        for s in &core.shards {
            s.remove_version_entry(id);
        }
        lc.versions.remove(&id);
        true
    }

    /// Promotes installed version `id`: new sessions open on it from the
    /// moment this returns, while sessions pinned to the old live version
    /// keep draining on it. The old version becomes the rollback target
    /// (displacing — and freeing, once unpinned everywhere — any earlier
    /// one). Returns the demoted version, or `Ok(None)` if `id` was
    /// already live.
    pub fn promote_version(&self, id: u64) -> Result<Option<u64>, ServeError> {
        let core = &self.core;
        let (demoted, events) = {
            let mut lc = core.lock_lifecycle();
            if !lc.versions.contains_key(&id) {
                return Err(ServeError::UnknownVersion(id));
            }
            if lc.live == id {
                return Ok(None);
            }
            let old = lc.live;
            let displaced = lc.previous.take();
            lc.previous = Some(old);
            lc.live = id;
            if let Some(m) = lc.versions.get(&id) {
                m.retired.store(false, Ordering::Relaxed);
            }
            // Replicate the transition to every shard; each clears its
            // free-list (the states belong to the old version's buffer
            // geometry).
            for s in &core.shards {
                s.set_versions(id, Some(old));
            }
            let mut events = Vec::new();
            if let Some(d) = displaced {
                if let Some(m) = lc.versions.get(&d) {
                    m.retired.store(true, Ordering::Relaxed);
                }
                events.extend(core.sweep_locked(&mut lc, d));
            }
            core.metrics.inc_version_published();
            (old, events)
        };
        core.emit_lifecycle(events);
        Ok(Some(demoted))
    }

    /// Demotes the live version and re-promotes the previous one (the
    /// manual half of the divergence trip-wire). Returns
    /// `(demoted, restored)`.
    pub fn rollback_version(&self) -> Result<(u64, u64), ServeError> {
        let core = &self.core;
        let (demoted, restored, events) = {
            let mut lc = core.lock_lifecycle();
            let Some(prev) = lc.previous else {
                return Err(ServeError::NoPreviousVersion);
            };
            if !lc.versions.contains_key(&prev) {
                return Err(ServeError::UnknownVersion(prev));
            }
            let demoted = lc.live;
            if let Some(m) = lc.versions.get(&demoted) {
                m.retired.store(true, Ordering::Relaxed);
            }
            if let Some(m) = lc.versions.get(&prev) {
                m.retired.store(false, Ordering::Relaxed);
            }
            lc.live = prev;
            lc.previous = None;
            for s in &core.shards {
                s.set_versions(prev, None);
            }
            core.metrics.inc_version_rolled_back();
            let events: Vec<LifecycleEvent> =
                core.sweep_locked(&mut lc, demoted).into_iter().collect();
            (demoted, prev, events)
        };
        core.emit_lifecycle(events);
        Ok((demoted, restored))
    }

    /// Installs the observer for engine-initiated lifecycle transitions
    /// (retirements, trip-wire rollbacks). See the [`LifecycleEvent`]
    /// contract: the hook must be non-blocking and never re-enter the
    /// engine.
    pub fn set_lifecycle_hook(&self, hook: impl Fn(LifecycleEvent) + Send + Sync + 'static) {
        let mut g = match self.core.lifecycle_hook.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *g = Some(Box::new(hook));
    }

    /// Counts a candidate quarantined by the registry validation gate.
    pub fn note_version_quarantined(&self) {
        self.core.metrics.inc_version_quarantined();
    }

    /// Counts a fine-tune job entering its background task.
    pub fn note_finetune_started(&self) {
        self.core.metrics.finetune_started();
    }

    /// Counts a fine-tune job that published successfully.
    pub fn note_finetune_completed(&self) {
        self.core.metrics.finetune_completed();
    }

    /// Counts a fine-tune job that failed (divergence, panic, bad trace,
    /// or a rejected publish), leaving the serving model untouched.
    pub fn note_finetune_failed(&self) {
        self.core.metrics.finetune_failed();
    }
}

/// The token reaper: wakes at the next TTL expiry (or when a token is
/// minted/refreshed) and reclaims expired parked sessions.
fn reaper_loop(core: &Arc<EngineCore>) {
    loop {
        if core.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        let expired: Vec<ParkedGroup> = {
            let mut dt = core.lock_detach();
            let tokens: Vec<u128> = dt
                .parked
                .iter()
                .filter(|(_, g)| g.expires_at <= now)
                .map(|(t, _)| *t)
                .collect();
            tokens
                .into_iter()
                .filter_map(|t| dt.parked.remove(&t))
                .collect()
        };
        // Reap outside the detach lock: reaping takes shard locks and the
        // lifecycle lock, which never nest inside `detach`.
        for group in expired {
            core.reap_group(group);
        }
        let dt = core.lock_detach();
        if core.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let wait = dt
            .parked
            .values()
            .map(|g| g.expires_at.saturating_duration_since(Instant::now()))
            .min()
            .unwrap_or(Duration::from_secs(3600))
            .max(Duration::from_millis(10));
        drop(match core.reaper.wait_timeout(dt, wait) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_zeroes() {
        let ok = ServeConfig::new(2);
        assert!(ok.validate().is_ok());
        for (field, cfg) in [
            ("workers", ServeConfig { workers: 0, ..ok }),
            ("shards", ServeConfig { shards: 0, ..ok }),
            (
                "shards",
                ServeConfig {
                    shards: MAX_SHARDS + 1,
                    ..ok
                },
            ),
            ("max_sessions", ServeConfig { max_sessions: 0, ..ok }),
            ("queue_capacity", ServeConfig { queue_capacity: 0, ..ok }),
            ("slice_budget", ServeConfig { slice_budget: 0, ..ok }),
            (
                "queue_watermark",
                ServeConfig {
                    queue_watermark: 1,
                    queue_capacity: 64,
                    ..ok
                },
            ),
            ("detach_ttl_secs", ServeConfig { detach_ttl_secs: 0, ..ok }),
            ("read_timeout_ms", ServeConfig { read_timeout_ms: 0, ..ok }),
            ("max_connections", ServeConfig { max_connections: 0, ..ok }),
            ("batch_max", ServeConfig { batch_max: 0, ..ok }),
            (
                "quantized",
                ServeConfig {
                    quantized: true,
                    batch_decode: false,
                    ..ok
                },
            ),
        ] {
            let got = cfg.validate();
            assert!(
                matches!(&got, Err(ServeError::InvalidConfig { field: f, .. }) if f == field),
                "expected InvalidConfig({field}), got {got:?}"
            );
        }
    }

    #[test]
    fn detach_tokens_round_trip_as_hex() {
        let t = DetachToken(0x00ab_cdef_0123_4567_89ab_cdef_0123_4567);
        let s = t.to_string();
        assert_eq!(s.len(), 32);
        let back: DetachToken = s.parse().expect("hex parses");
        assert_eq!(back, t);
        assert!(
            matches!("not-hex".parse::<DetachToken>(), Err(ServeError::UnknownToken)),
            "garbage tokens are typed errors"
        );
    }

    #[test]
    fn session_events_classify_data_and_failure() {
        let fail = SessionEvent::Failed {
            reason: "x".to_string(),
        };
        assert!(fail.is_failure());
        assert_eq!(fail.failure(), Some("x"));
        assert!(fail.data().is_none());
    }
}
