//! The continuous-batching serving engine.
//!
//! A fixed pool of worker threads pulls *ready* sessions from a run
//! queue, advances each by at most [`ServeConfig::slice_budget`] events
//! (one KV-cached decode step per event over the session's own
//! [`cpt_gpt::DecodeState`]), appends the events to the session's bounded
//! queue, and re-enqueues the session — no thread is ever dedicated to a
//! session, so thousands of concurrent sessions run on a handful of
//! workers.
//!
//! **Backpressure** is two-level. Per session: a bounded event queue; a
//! session whose consumer lags is *parked* (not re-enqueued) until
//! `next_events` drains below capacity, so a slow reader costs nothing but
//! its own queue memory. Globally: admission control sheds `open_session`
//! with [`ServeError::Overloaded`] once the session cap or the total
//! queued-events watermark is hit.
//!
//! **Crash-only**: each worker's decode slice runs under `catch_unwind`. A
//! panic fails *only the session being advanced* — its consumer receives
//! the already-decoded prefix of the slice followed by a terminal
//! [`SessionEvent::Failed`], the worker re-enters its loop, and the panic
//! is counted. The engine mutex recovers from poisoning, so a panicking
//! slice can never wedge the scheduler. Failure is in-band data, not
//! process death.
//!
//! **Drain**: [`ServeHandle::drain`] stops admission (typed
//! [`ServeError::Draining`]), lets live sessions finish decoding, and
//! force-fails the stragglers at the deadline — the primitive a hot-swap
//! model registry needs (quiesce, swap, resume).
//!
//! **Detach/reattach**: a connection front end can park its sessions under
//! a capability token ([`DetachToken`]) instead of closing them on
//! disconnect. Parked sessions keep decoding until their bounded queue
//! fills (the normal backpressure path), and a client presenting the token
//! within the TTL resumes exactly where delivery stopped — byte-identical
//! to an undisturbed run. A reaper thread reclaims expired tokens.
//!
//! **Determinism**: a session's event sequence is a pure function of
//! `(model, StreamParams)`. The run queue guarantees at most one worker
//! ever holds a session's decoder, each session owns its RNG (splitmix64
//! from the session seed, the same discipline as the parallel batch
//! generator), and [`cpt_gpt::DecodeState::reset`] makes free-list reuse
//! byte-equivalent to fresh allocation — so output is bit-identical at any
//! worker count, including 1. Chaos injection (see [`crate::chaos`])
//! targets faults by logical coordinates so this holds under fault too.
//!
//! **Allocation**: steady-state serving is allocation-free per event. All
//! decode buffers live in the session's `DecodeState` (recycled through a
//! free-list on close); each worker reuses one slice buffer; per-session
//! queues only grow to the configured capacity once.

#![deny(clippy::unwrap_used)]

use crate::chaos::ChaosPlan;
use crate::error::ServeError;
use crate::metrics::{Metrics, StatsSnapshot};
use cpt_gpt::{BatchDecoder, CptGpt, DecodeState, RoundOutcome, SessionDecoder, StreamParams};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The decoded event type produced by the model layer.
pub type DecodedEvent = cpt_gpt::SessionEvent;

/// One event delivered to a session consumer: either decoded data or the
/// terminal record of a contained failure.
///
/// On the wire a data event serializes exactly as before (untagged), so
/// clients that predate failure containment keep parsing; a failure
/// serializes as `{"reason": "..."}`, which no data event can produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum SessionEvent {
    /// A decoded control-plane event.
    Data(DecodedEvent),
    /// Terminal: the session died to a contained fault (worker panic or
    /// drain force-fail). No further events will ever arrive after this.
    Failed {
        /// Human-readable cause (panic payload or drain deadline note).
        reason: String,
    },
}

impl SessionEvent {
    /// The decoded event, if this is a data event.
    pub fn data(&self) -> Option<&DecodedEvent> {
        match self {
            SessionEvent::Data(ev) => Some(ev),
            SessionEvent::Failed { .. } => None,
        }
    }

    /// The failure reason, if this is a terminal failure record.
    pub fn failure(&self) -> Option<&str> {
        match self {
            SessionEvent::Data(_) => None,
            SessionEvent::Failed { reason } => Some(reason),
        }
    }

    /// True for the terminal failure record.
    pub fn is_failure(&self) -> bool {
        matches!(self, SessionEvent::Failed { .. })
    }
}

impl From<DecodedEvent> for SessionEvent {
    fn from(ev: DecodedEvent) -> Self {
        SessionEvent::Data(ev)
    }
}

/// Serving-engine configuration (plus the front-end knobs the TCP server
/// reads from the same validated struct: read timeout, connection cap,
/// detach TTL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Decode worker threads.
    pub workers: usize,
    /// Admission cap on concurrently open sessions.
    pub max_sessions: usize,
    /// Bound on each session's undelivered-event queue; a full queue parks
    /// the session until its consumer drains.
    pub queue_capacity: usize,
    /// Maximum events a worker decodes for one session per scheduling
    /// slice before re-enqueueing it (fairness knob).
    pub slice_budget: usize,
    /// Global admission watermark on total queued events across sessions.
    pub queue_watermark: usize,
    /// How long a detach token keeps parked sessions alive before the
    /// reaper reclaims them (seconds).
    pub detach_ttl_secs: u64,
    /// Connection-thread read timeout (ms); bounds how long a server
    /// thread can miss the stop flag while a client idles.
    pub read_timeout_ms: u64,
    /// Concurrent connection cap for the TCP front end; excess connections
    /// get one error line and are dropped.
    pub max_connections: usize,
    /// Decode runnable sessions in cross-session batches (one packed
    /// per-layer GEMM over all sessions a worker holds) instead of one
    /// session at a time. Output is bit-identical either way; batching is
    /// purely a throughput optimization.
    pub batch_decode: bool,
    /// Maximum sessions one worker stacks into a single batched forward
    /// pass (ignored when `batch_decode` is off).
    pub batch_max: usize,
    /// Decode through int8 per-channel-quantized weights (approximate —
    /// no bit-identity claim; see DESIGN.md §15). Requires `batch_decode`.
    pub quantized: bool,
}

impl ServeConfig {
    /// Defaults tuned for a small host: `workers` decode threads, a 4096-
    /// session cap, 256-event queues, 64-event slices, 60 s detach TTL,
    /// 200 ms read timeout, 256 connections.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers,
            max_sessions: 4096,
            queue_capacity: 256,
            slice_budget: 64,
            queue_watermark: 1 << 20,
            detach_ttl_secs: 60,
            read_timeout_ms: 200,
            max_connections: 256,
            batch_decode: true,
            batch_max: 64,
            quantized: false,
        }
    }

    /// Checks every field against its domain, returning the first
    /// violation as [`ServeError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), ServeError> {
        fn bad(field: &str, message: impl Into<String>) -> ServeError {
            ServeError::InvalidConfig {
                field: field.to_string(),
                message: message.into(),
            }
        }
        if self.workers == 0 {
            return Err(bad("workers", "must be at least 1"));
        }
        if self.max_sessions == 0 {
            return Err(bad("max_sessions", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(bad("queue_capacity", "must be at least 1"));
        }
        if self.slice_budget == 0 {
            return Err(bad("slice_budget", "must be at least 1"));
        }
        if self.queue_watermark < self.queue_capacity {
            return Err(bad(
                "queue_watermark",
                format!(
                    "must be at least queue_capacity ({}), got {}",
                    self.queue_capacity, self.queue_watermark
                ),
            ));
        }
        if self.detach_ttl_secs == 0 {
            return Err(bad("detach_ttl_secs", "must be at least 1"));
        }
        if self.read_timeout_ms == 0 {
            return Err(bad(
                "read_timeout_ms",
                "must be at least 1 (0 would never re-check the stop flag)",
            ));
        }
        if self.max_connections == 0 {
            return Err(bad("max_connections", "must be at least 1"));
        }
        if self.batch_decode && self.batch_max == 0 {
            return Err(bad("batch_max", "must be at least 1"));
        }
        if self.quantized && !self.batch_decode {
            return Err(bad(
                "quantized",
                "requires batch_decode (the sequential path has no quantized kernels)",
            ));
        }
        Ok(())
    }
}

/// Opaque session identifier handed out by [`ServeHandle::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// A capability for reclaiming detached sessions: 128 bits, unguessable,
/// single-use. Printed/parsed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetachToken(pub u128);

impl std::fmt::Display for DetachToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::str::FromStr for DetachToken {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u128::from_str_radix(s.trim(), 16)
            .map(DetachToken)
            .map_err(|_| ServeError::UnknownToken)
    }
}

/// What a drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainReport {
    /// Sessions that finished decoding (or were closed by their consumer)
    /// within the deadline.
    pub completed: u64,
    /// Stragglers force-failed at the deadline (each delivered a terminal
    /// [`SessionEvent::Failed`]).
    pub force_failed: u64,
}

/// Events delivered by one [`ServeHandle::next_events`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// Events in decode order (possibly empty if the wait timed out).
    pub events: Vec<SessionEvent>,
    /// True once the session's decode is complete *and* its queue is fully
    /// drained; no further events will ever arrive.
    pub finished: bool,
}

/// Scheduling state of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// In the run queue, awaiting a worker.
    Queued,
    /// A worker currently holds the decoder.
    Running,
    /// Event queue full; waiting for the consumer to drain.
    Parked,
    /// Decode complete (or failed); only delivery remains.
    Done,
}

struct SessionSlot {
    /// The decoder; `None` while a worker runs the session, and forever
    /// after a contained failure (the unwind consumed it).
    decoder: Option<SessionDecoder>,
    /// Undelivered events, bounded by `queue_capacity` (+1 for a terminal
    /// failure record, which is always accepted).
    queue: VecDeque<SessionEvent>,
    run: RunState,
    /// Close was requested while a worker held the decoder; the worker
    /// disposes of the session at slice end.
    closed: bool,
    /// The session died to a contained fault; its queue ends with
    /// [`SessionEvent::Failed`] and any in-flight slice is discarded.
    failed: bool,
    /// Parked under a detach token; unreachable through
    /// `next_events`/`close_session` until reattached.
    detached: bool,
    /// The model version this session opened on. Pinned for the session's
    /// whole life: a `publish` mid-stream never changes what an open
    /// session decodes with, so its output stays byte-identical to an
    /// un-swapped run.
    version: u64,
}

/// Sessions parked under one detach token.
struct ParkedGroup {
    sessions: Vec<u64>,
    expires_at: Instant,
}

/// One installed model version: the weights every session pinned to it
/// decodes with, plus the refcount the retirer watches.
struct ModelEntry {
    model: Arc<CptGpt>,
    /// Int8 per-channel decode weights, quantized once when the version is
    /// installed (under `cfg.quantized`) and shared read-only by every
    /// worker's [`BatchDecoder`].
    quant: Option<Arc<cpt_gpt::QuantDecodeWeights>>,
    /// Open sessions pinned to this version.
    refs: u64,
    /// Demoted and no longer the rollback target: free the entry the
    /// moment `refs` hits zero.
    retired: bool,
}

/// Out-of-band model-lifecycle notifications from the engine. Emitted via
/// the hook installed with [`ServeHandle::set_lifecycle_hook`], which the
/// registry director uses to persist engine-initiated transitions.
///
/// The hook may be invoked while engine-internal locks are held, so it
/// must never call back into the engine and should hand the event to a
/// queue rather than doing blocking work inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The last pinned session on a demoted version ended and the engine
    /// freed its in-memory weights.
    Retired(u64),
    /// The serve-time divergence trip-wire (a non-finite decoded event)
    /// demoted the live version and re-promoted the previous one without
    /// a restart.
    TripWire {
        /// The version that produced the divergent event.
        demoted: u64,
        /// The version that is live again.
        restored: u64,
    },
}

struct EngineState {
    sessions: HashMap<u64, SessionSlot>,
    run_queue: VecDeque<u64>,
    /// Recycled decode states, capped at `max_sessions`. Invariant: every
    /// state here came from a session pinned to `live_version` — promote
    /// and rollback clear the list — so reuse can never leak one model
    /// version's buffer geometry into another's decode.
    free_states: Vec<DecodeState>,
    /// Detached session groups keyed by capability token.
    parked: HashMap<u128, ParkedGroup>,
    /// Total undelivered events across all sessions (watermark gauge).
    queued_total: usize,
    /// Open sessions (excludes close-pending ones still in `sessions`).
    open_count: usize,
    next_id: u64,
    /// Installed model versions by id. An entry stays installed while any
    /// session is pinned to it, while it is live, or while it is the
    /// rollback target.
    models: HashMap<u64, ModelEntry>,
    /// The version new sessions open on.
    live_version: u64,
    /// The rollback target (the version demoted by the latest promote).
    previous_version: Option<u64>,
}

/// Observer callback for engine-initiated lifecycle transitions.
type LifecycleHook = Box<dyn Fn(LifecycleEvent) + Send + Sync>;

struct Shared {
    cfg: ServeConfig,
    chaos: ChaosPlan,
    state: Mutex<EngineState>,
    /// Workers wait here for the run queue to fill.
    work: Condvar,
    /// Consumers wait here for events to arrive.
    delivery: Condvar,
    /// The token reaper waits here between expiries.
    reaper: Condvar,
    metrics: Metrics,
    shutdown: AtomicBool,
    /// Admission is suspended (drain in progress or completed).
    draining: AtomicBool,
    /// Nonce folded into detach-token minting.
    token_nonce: AtomicU64,
    /// Observer for engine-initiated lifecycle transitions (see
    /// [`LifecycleEvent`]).
    lifecycle_hook: Mutex<Option<LifecycleHook>>,
}

impl Shared {
    /// Locks the engine state, recovering from a poisoned mutex (a panic
    /// in one worker must not wedge the whole server).
    fn lock_state(&self) -> MutexGuard<'_, EngineState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a decode state to the free-list — but only when it comes
    /// from a session pinned to the live version (see the `free_states`
    /// invariant: cross-version reuse is never allowed).
    fn recycle(state: &mut EngineState, cap: usize, version: u64, decode: DecodeState) {
        if version == state.live_version && state.free_states.len() < cap {
            state.free_states.push(decode);
        }
    }

    /// Removes a session's storage (immediately, or deferred to the worker
    /// holding its decoder). Does *not* touch `open_count` or the version
    /// refcount — callers own that bookkeeping.
    fn dispose_locked(&self, st: &mut EngineState, id: u64) {
        let running = st
            .sessions
            .get(&id)
            .map(|s| s.run == RunState::Running)
            .unwrap_or(false);
        if running {
            if let Some(slot) = st.sessions.get_mut(&id) {
                slot.closed = true;
                let n = slot.queue.len();
                slot.queue.clear();
                st.queued_total -= n;
            }
        } else if let Some(slot) = st.sessions.remove(&id) {
            st.queued_total -= slot.queue.len();
            if let Some(decoder) = slot.decoder {
                Shared::recycle(st, self.cfg.max_sessions, slot.version, decoder.into_state());
            }
        }
    }

    /// Frees a demoted version's entry once nothing references it: zero
    /// pinned sessions, marked retired, not live, not the rollback target.
    /// Returns the [`LifecycleEvent::Retired`] notification to emit.
    fn sweep_version_locked(
        &self,
        st: &mut EngineState,
        version: u64,
    ) -> Option<LifecycleEvent> {
        let freeable = st
            .models
            .get(&version)
            .map(|e| e.refs == 0 && e.retired)
            .unwrap_or(false)
            && st.live_version != version
            && st.previous_version != Some(version);
        if freeable {
            st.models.remove(&version);
            self.metrics.inc_version_retired();
            Some(LifecycleEvent::Retired(version))
        } else {
            None
        }
    }

    /// Drops one session's pin on `version` and frees the entry if that
    /// was the last reference to a retired version.
    fn release_version_locked(
        &self,
        st: &mut EngineState,
        version: u64,
    ) -> Option<LifecycleEvent> {
        if let Some(e) = st.models.get_mut(&version) {
            e.refs = e.refs.saturating_sub(1);
        }
        self.sweep_version_locked(st, version)
    }

    /// Invokes the lifecycle hook for each event. The hook contract (see
    /// [`LifecycleEvent`]) makes this safe to call from any engine path:
    /// the hook must be non-blocking and never re-enter the engine.
    fn emit_lifecycle(&self, events: impl IntoIterator<Item = LifecycleEvent>) {
        let hook = match self.lifecycle_hook.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(h) = hook.as_ref() {
            for ev in events {
                h(ev);
            }
        }
    }

    /// The automatic divergence trip-wire: a worker observed a non-finite
    /// event decoded by `version`. If that version is still live and a
    /// previous version is retained, demote it and re-promote the previous
    /// one in-engine — no restart, no operator. Returns the notifications
    /// for the registry director to persist.
    fn trip_divergence(&self, version: u64) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();
        let mut st = self.lock_state();
        if st.live_version != version {
            return events;
        }
        let Some(prev) = st.previous_version else {
            return events;
        };
        if !st.models.contains_key(&prev) {
            return events;
        }
        if let Some(e) = st.models.get_mut(&version) {
            e.retired = true;
        }
        if let Some(e) = st.models.get_mut(&prev) {
            e.retired = false;
        }
        st.live_version = prev;
        st.previous_version = None;
        st.free_states.clear();
        self.metrics.inc_version_rolled_back();
        events.push(LifecycleEvent::TripWire {
            demoted: version,
            restored: prev,
        });
        events.extend(self.sweep_version_locked(&mut st, version));
        events
    }

    /// Marks a session failed: appends the terminal failure record, stops
    /// scheduling, and counts it. The failure record is always accepted
    /// even into a full queue (bound +1) so the consumer cannot miss it.
    fn fail_locked(&self, st: &mut EngineState, id: u64, reason: String) -> bool {
        let Some(slot) = st.sessions.get_mut(&id) else {
            return false;
        };
        if slot.closed || slot.failed {
            return false;
        }
        slot.queue.push_back(SessionEvent::Failed { reason });
        slot.run = RunState::Done;
        slot.failed = true;
        st.queued_total += 1;
        self.metrics.inc_failed();
        true
    }

    /// Mints a fresh, unregistered capability token. Uniqueness against
    /// live tokens is checked under the lock; unguessability comes from
    /// 128 bits of splitmix64-mixed wall-clock + nonce.
    fn mint_locked(&self, st: &EngineState) -> DetachToken {
        loop {
            let nonce = self.token_nonce.fetch_add(1, Ordering::Relaxed);
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let hi = splitmix64(now ^ nonce.rotate_left(17));
            let lo = splitmix64(hi ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let token = ((hi as u128) << 64) | lo as u128;
            if token != 0 && !st.parked.contains_key(&token) {
                return DetachToken(token);
            }
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The serving engine: owns the worker pool and the token reaper. Obtain a
/// [`ServeHandle`] via [`Engine::handle`] to open and drive sessions; drop
/// (or [`Engine::shutdown`]) to stop the workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Validates `cfg`, spawns the worker pool, and returns the running
    /// engine.
    pub fn start(model: Arc<CptGpt>, cfg: ServeConfig) -> Result<Engine, ServeError> {
        Engine::start_with_chaos(model, cfg, ChaosPlan::default())
    }

    /// [`Engine::start`] with a chaos plan wired into the decode loop.
    /// The model is installed as version 1.
    pub fn start_with_chaos(
        model: Arc<CptGpt>,
        cfg: ServeConfig,
        chaos: ChaosPlan,
    ) -> Result<Engine, ServeError> {
        Engine::start_versioned(model, 1, cfg, chaos)
    }

    /// [`Engine::start_with_chaos`] with an explicit id for the initial
    /// model version — the registry front end passes the live version id
    /// recovered from disk so engine and manifest agree from the first
    /// session.
    pub fn start_versioned(
        model: Arc<CptGpt>,
        version: u64,
        cfg: ServeConfig,
        chaos: ChaosPlan,
    ) -> Result<Engine, ServeError> {
        cfg.validate()?;
        let quant = if cfg.quantized {
            Some(Arc::new(model.quantize_decode_weights()))
        } else {
            None
        };
        let mut models = HashMap::new();
        models.insert(
            version,
            ModelEntry {
                model,
                quant,
                refs: 0,
                retired: false,
            },
        );
        let shared = Arc::new(Shared {
            cfg,
            chaos,
            state: Mutex::new(EngineState {
                sessions: HashMap::new(),
                run_queue: VecDeque::new(),
                free_states: Vec::new(),
                parked: HashMap::new(),
                queued_total: 0,
                open_count: 0,
                next_id: 1,
                models,
                live_version: version,
                previous_version: None,
            }),
            work: Condvar::new(),
            delivery: Condvar::new(),
            reaper: Condvar::new(),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            token_nonce: AtomicU64::new(0x5EED),
            lifecycle_hook: Mutex::new(None),
        });
        let spawn_err = |e: std::io::Error| ServeError::InvalidConfig {
            field: "workers".to_string(),
            message: format!("cannot spawn engine thread: {e}"),
        };
        let mut workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpt-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(spawn_err)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let reaper_shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name("cpt-serve-reaper".to_string())
                .spawn(move || reaper_loop(&reaper_shared))
                .map_err(spawn_err)?,
        );
        Ok(Engine { shared, workers })
    }

    /// A cloneable handle for opening and driving sessions.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the workers and joins them. Open sessions are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// See [`ServeHandle::drain`].
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        self.handle().drain(timeout)
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        self.shared.delivery.notify_all();
        self.shared.reaper.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Cloneable front end to a running [`Engine`]. All methods are safe to
/// call from any number of threads concurrently.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Admits a new session, or sheds it with [`ServeError::Overloaded`]
    /// when the session cap or queued-events watermark is exceeded.
    /// While the engine drains, admission fails with
    /// [`ServeError::Draining`] instead.
    ///
    /// The session's decode state comes from the free-list when one is
    /// available, so steady-state open/close cycles allocate nothing.
    pub fn open_session(&self, params: StreamParams) -> Result<SessionId, ServeError> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if shared.draining.load(Ordering::SeqCst) {
            return Err(ServeError::Draining);
        }
        let mut st = shared.lock_state();
        if st.open_count >= shared.cfg.max_sessions
            || st.queued_total >= shared.cfg.queue_watermark
        {
            let err = ServeError::Overloaded {
                open: st.open_count,
                cap: shared.cfg.max_sessions,
                queued: st.queued_total,
                watermark: shared.cfg.queue_watermark,
            };
            shared.metrics.inc_shed();
            return Err(err);
        }
        // Pin the live version: the session decodes with these weights for
        // its whole life, whatever publishes happen meanwhile.
        let version = st.live_version;
        let model = match st.models.get(&version) {
            Some(e) => Arc::clone(&e.model),
            None => return Err(ServeError::UnknownVersion(version)),
        };
        let decoder = match st.free_states.pop() {
            Some(state) => model.open_session_reusing(params, state)?,
            None => model.open_session(params)?,
        };
        let id = st.next_id;
        st.next_id += 1;
        st.sessions.insert(
            id,
            SessionSlot {
                decoder: Some(decoder),
                queue: VecDeque::new(),
                run: RunState::Queued,
                closed: false,
                failed: false,
                detached: false,
                version,
            },
        );
        if let Some(e) = st.models.get_mut(&version) {
            e.refs += 1;
        }
        st.open_count += 1;
        st.run_queue.push_back(id);
        shared.metrics.inc_opened();
        drop(st);
        shared.work.notify_one();
        Ok(SessionId(id))
    }

    /// Delivers up to `max` decoded events in order, blocking up to `wait`
    /// while the queue is empty and the session is still decoding. Returns
    /// `finished = true` once decode is complete and the queue is drained.
    /// A session that died to a contained fault delivers its decoded
    /// prefix followed by one terminal [`SessionEvent::Failed`].
    ///
    /// Draining a parked session re-enqueues it — this is the consumer
    /// half of the per-session backpressure loop.
    pub fn next_events(
        &self,
        id: SessionId,
        max: usize,
        wait: Duration,
    ) -> Result<EventBatch, ServeError> {
        let shared = &self.shared;
        let max = max.max(1);
        let deadline = Instant::now() + wait;
        let mut st = shared.lock_state();
        loop {
            {
                let slot = st
                    .sessions
                    .get(&id.0)
                    .filter(|s| !s.closed && !s.detached)
                    .ok_or(ServeError::UnknownSession(id.0))?;
                if !slot.queue.is_empty() || slot.run == RunState::Done {
                    break;
                }
            }
            let now = Instant::now();
            if now >= deadline || shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            st = match shared.delivery.wait_timeout(st, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }

        let (events, finished, wake) = {
            let slot = st
                .sessions
                .get_mut(&id.0)
                .filter(|s| !s.closed && !s.detached)
                .ok_or(ServeError::UnknownSession(id.0))?;
            let n = slot.queue.len().min(max);
            let events: Vec<SessionEvent> = slot.queue.drain(..n).collect();
            let wake = slot.run == RunState::Parked
                && slot.queue.len() < shared.cfg.queue_capacity;
            if wake {
                slot.run = RunState::Queued;
            }
            let finished = slot.run == RunState::Done && slot.queue.is_empty();
            (events, finished, wake)
        };
        st.queued_total -= events.len();
        if wake {
            st.run_queue.push_back(id.0);
        }
        drop(st);
        if wake {
            shared.work.notify_one();
        }
        shared.metrics.add_delivered(events.len() as u64);
        Ok(EventBatch { events, finished })
    }

    /// Closes a session, recycling its decode buffers into the free-list.
    /// Undelivered events are discarded.
    pub fn close_session(&self, id: SessionId) -> Result<(), ServeError> {
        let shared = &self.shared;
        let mut st = shared.lock_state();
        let Some(version) = st
            .sessions
            .get(&id.0)
            .filter(|s| !s.closed && !s.detached)
            .map(|s| s.version)
        else {
            return Err(ServeError::UnknownSession(id.0));
        };
        shared.dispose_locked(&mut st, id.0);
        st.open_count -= 1;
        let retired = shared.release_version_locked(&mut st, version);
        shared.metrics.inc_closed();
        drop(st);
        shared.emit_lifecycle(retired);
        Ok(())
    }

    /// Mints a fresh detach capability and registers it (with an empty
    /// session group) so the TTL clock starts now. The TCP front end calls
    /// this when a client *arms* detach-on-disconnect, so the token exists
    /// on the client side before any disconnect can happen.
    pub fn mint_detach_token(&self) -> DetachToken {
        let shared = &self.shared;
        let mut st = shared.lock_state();
        let token = shared.mint_locked(&st);
        let expires_at = Instant::now() + Duration::from_secs(shared.cfg.detach_ttl_secs);
        st.parked.insert(
            token.0,
            ParkedGroup {
                sessions: Vec::new(),
                expires_at,
            },
        );
        drop(st);
        shared.reaper.notify_all();
        token
    }

    /// Parks `ids` under `token` (refreshing its TTL), detaching them from
    /// delivery until [`ServeHandle::reattach`] presents the token again.
    /// Parked sessions keep decoding until their bounded queue fills.
    /// Unknown or already-detached ids are skipped (the disconnect path
    /// races with closes); returns how many sessions were parked.
    pub fn park_sessions(
        &self,
        token: DetachToken,
        ids: impl IntoIterator<Item = SessionId>,
    ) -> usize {
        let shared = &self.shared;
        let mut st = shared.lock_state();
        let mut parked: Vec<u64> = Vec::new();
        for id in ids {
            if let Some(slot) = st
                .sessions
                .get_mut(&id.0)
                .filter(|s| !s.closed && !s.detached)
            {
                slot.detached = true;
                parked.push(id.0);
            }
        }
        let n = parked.len();
        if parked.is_empty() {
            // Nothing survived to park; the armed placeholder (if any) is
            // useless now.
            st.parked.remove(&token.0);
        } else {
            let expires_at =
                Instant::now() + Duration::from_secs(shared.cfg.detach_ttl_secs);
            st.parked.insert(
                token.0,
                ParkedGroup {
                    sessions: parked,
                    expires_at,
                },
            );
        }
        drop(st);
        shared.reaper.notify_all();
        shared.metrics.add_detached(n as u64);
        n
    }

    /// Convenience for library users: mint a token and park `ids` under it
    /// in one call. Fails with [`ServeError::UnknownSession`] (parking
    /// nothing) if any id is not an open, attached session.
    pub fn detach_sessions(&self, ids: &[SessionId]) -> Result<DetachToken, ServeError> {
        {
            let st = self.shared.lock_state();
            for id in ids {
                if st
                    .sessions
                    .get(&id.0)
                    .filter(|s| !s.closed && !s.detached)
                    .is_none()
                {
                    return Err(ServeError::UnknownSession(id.0));
                }
            }
        }
        let token = self.mint_detach_token();
        self.park_sessions(token, ids.iter().copied());
        Ok(token)
    }

    /// Redeems a detach token: the parked sessions re-attach (delivery
    /// resumes exactly where it stopped) and the token dies. Fails with
    /// [`ServeError::UnknownToken`] when the token was never minted,
    /// already redeemed, or expired.
    pub fn reattach(&self, token: DetachToken) -> Result<Vec<SessionId>, ServeError> {
        let shared = &self.shared;
        let mut st = shared.lock_state();
        let group = match st.parked.remove(&token.0) {
            Some(g) if g.expires_at > Instant::now() => g,
            Some(expired) => {
                // Expired but not yet reaped: reclaim now, token is dead.
                st.parked.insert(token.0, expired);
                let retired = reap_expired_locked(shared, &mut st, Instant::now());
                drop(st);
                shared.emit_lifecycle(retired);
                return Err(ServeError::UnknownToken);
            }
            None => return Err(ServeError::UnknownToken),
        };
        let mut ids = Vec::with_capacity(group.sessions.len());
        for id in group.sessions {
            if let Some(slot) = st.sessions.get_mut(&id).filter(|s| s.detached) {
                slot.detached = false;
                ids.push(SessionId(id));
            }
        }
        drop(st);
        shared.metrics.add_reattached(ids.len() as u64);
        Ok(ids)
    }

    /// Stops admission ([`ServeError::Draining`]) and waits for live
    /// sessions to finish decoding. Stragglers still decoding at the
    /// deadline — including detached sessions nobody reattached — are
    /// force-failed: each gets a terminal [`SessionEvent::Failed`] and
    /// counts in [`DrainReport::force_failed`]. Delivery of already-decoded
    /// events continues after the drain; admission stays suspended until
    /// [`ServeHandle::resume_admission`].
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        let mut st = shared.lock_state();
        let initial = st.sessions.values().filter(|s| !s.closed).count() as u64;
        loop {
            let unfinished = st
                .sessions
                .values()
                .any(|s| !s.closed && s.run != RunState::Done);
            if !unfinished || shared.shutdown.load(Ordering::SeqCst) {
                drop(st);
                shared.delivery.notify_all();
                return DrainReport {
                    completed: initial,
                    force_failed: 0,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Bounded wait slices: workers notify `delivery` on publish,
            // but closes do not, so never sleep unbounded.
            let wait = (deadline - now).min(Duration::from_millis(50));
            st = match shared.delivery.wait_timeout(st, wait) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        // Deadline: force-fail everything still decoding.
        let stragglers: Vec<u64> = st
            .sessions
            .iter()
            .filter(|(_, s)| !s.closed && s.run != RunState::Done)
            .map(|(id, _)| *id)
            .collect();
        let mut force_failed = 0u64;
        for id in stragglers {
            if shared.fail_locked(&mut st, id, "drain deadline exceeded".to_string()) {
                shared.metrics.inc_force_failed();
                force_failed += 1;
            }
        }
        drop(st);
        shared.delivery.notify_all();
        DrainReport {
            completed: initial.saturating_sub(force_failed),
            force_failed,
        }
    }

    /// Re-opens admission after a drain (the hot-swap "resume" half).
    pub fn resume_admission(&self) {
        self.shared.draining.store(false, Ordering::SeqCst);
    }

    /// True while admission is suspended by a drain.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Sessions currently open.
    pub fn sessions_open(&self) -> usize {
        self.shared.lock_state().open_count
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let (open, queued, free, live, per_version) = {
            let st = self.shared.lock_state();
            let mut per_version: Vec<(u64, u64)> =
                st.models.iter().map(|(v, e)| (*v, e.refs)).collect();
            per_version.sort_unstable();
            (
                st.open_count,
                st.queued_total,
                st.free_states.len(),
                st.live_version,
                per_version,
            )
        };
        self.shared.metrics.snapshot(
            open,
            queued,
            free,
            self.shared.cfg.workers,
            live,
            &per_version,
        )
    }

    /// True once the engine refuses new work.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The model version new sessions currently open on.
    pub fn live_version(&self) -> u64 {
        self.shared.lock_state().live_version
    }

    /// Installed versions and their pinned-session counts, sorted by id.
    pub fn sessions_per_version(&self) -> Vec<(u64, u64)> {
        let st = self.shared.lock_state();
        let mut v: Vec<(u64, u64)> = st.models.iter().map(|(v, e)| (*v, e.refs)).collect();
        v.sort_unstable();
        v
    }

    /// Installs `model` under version `id` without promoting it: sessions
    /// cannot open on it until [`ServeHandle::promote_version`]. Idempotent
    /// when the id is already installed. Quantized decode weights are built
    /// here (outside the engine lock) when the engine runs quantized.
    pub fn install_version(&self, id: u64, model: Arc<CptGpt>) {
        let quant = if self.shared.cfg.quantized {
            Some(Arc::new(model.quantize_decode_weights()))
        } else {
            None
        };
        let mut st = self.shared.lock_state();
        st.models.entry(id).or_insert(ModelEntry {
            model,
            quant,
            refs: 0,
            retired: false,
        });
    }

    /// Removes an installed-but-never-promoted version (the cleanup path
    /// when a registry promotion fails after the engine install). Refuses
    /// — returning `false` — when the version is live, is the rollback
    /// target, or has pinned sessions.
    pub fn uninstall_version(&self, id: u64) -> bool {
        let mut st = self.shared.lock_state();
        let removable = st.models.get(&id).map(|e| e.refs == 0).unwrap_or(false)
            && st.live_version != id
            && st.previous_version != Some(id);
        if removable {
            st.models.remove(&id);
        }
        removable
    }

    /// Promotes installed version `id`: new sessions open on it from the
    /// moment this returns, while sessions pinned to the old live version
    /// keep draining on it. The old version becomes the rollback target
    /// (displacing — and freeing, once unpinned — any earlier one).
    /// Returns the demoted version, or `Ok(None)` if `id` was already
    /// live.
    pub fn promote_version(&self, id: u64) -> Result<Option<u64>, ServeError> {
        let (demoted, events) = {
            let mut st = self.shared.lock_state();
            if !st.models.contains_key(&id) {
                return Err(ServeError::UnknownVersion(id));
            }
            if st.live_version == id {
                return Ok(None);
            }
            let old = st.live_version;
            let displaced = st.previous_version.take();
            st.previous_version = Some(old);
            st.live_version = id;
            if let Some(e) = st.models.get_mut(&id) {
                e.retired = false;
            }
            // Free-list states belong to the old version's buffer
            // geometry; never let the new version inherit them.
            st.free_states.clear();
            let mut events = Vec::new();
            if let Some(d) = displaced {
                if let Some(e) = st.models.get_mut(&d) {
                    e.retired = true;
                }
                events.extend(self.shared.sweep_version_locked(&mut st, d));
            }
            self.shared.metrics.inc_version_published();
            (old, events)
        };
        self.shared.emit_lifecycle(events);
        Ok(Some(demoted))
    }

    /// Demotes the live version and re-promotes the previous one (the
    /// manual half of the divergence trip-wire). Returns
    /// `(demoted, restored)`.
    pub fn rollback_version(&self) -> Result<(u64, u64), ServeError> {
        let (demoted, restored, events) = {
            let mut st = self.shared.lock_state();
            let Some(prev) = st.previous_version else {
                return Err(ServeError::NoPreviousVersion);
            };
            if !st.models.contains_key(&prev) {
                return Err(ServeError::UnknownVersion(prev));
            }
            let demoted = st.live_version;
            if let Some(e) = st.models.get_mut(&demoted) {
                e.retired = true;
            }
            if let Some(e) = st.models.get_mut(&prev) {
                e.retired = false;
            }
            st.live_version = prev;
            st.previous_version = None;
            st.free_states.clear();
            self.shared.metrics.inc_version_rolled_back();
            let events: Vec<LifecycleEvent> =
                self.shared.sweep_version_locked(&mut st, demoted).into_iter().collect();
            (demoted, prev, events)
        };
        self.shared.emit_lifecycle(events);
        Ok((demoted, restored))
    }

    /// Installs the observer for engine-initiated lifecycle transitions
    /// (retirements, trip-wire rollbacks). See the [`LifecycleEvent`]
    /// contract: the hook must be non-blocking and never re-enter the
    /// engine.
    pub fn set_lifecycle_hook(&self, hook: impl Fn(LifecycleEvent) + Send + Sync + 'static) {
        let mut g = match self.shared.lifecycle_hook.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *g = Some(Box::new(hook));
    }

    /// Counts a candidate quarantined by the registry validation gate.
    pub fn note_version_quarantined(&self) {
        self.shared.metrics.inc_version_quarantined();
    }

    /// Counts a fine-tune job entering its background task.
    pub fn note_finetune_started(&self) {
        self.shared.metrics.finetune_started();
    }

    /// Counts a fine-tune job that published successfully.
    pub fn note_finetune_completed(&self) {
        self.shared.metrics.finetune_completed();
    }

    /// Counts a fine-tune job that failed (divergence, panic, bad trace,
    /// or a rejected publish), leaving the serving model untouched.
    pub fn note_finetune_failed(&self) {
        self.shared.metrics.finetune_failed();
    }
}

/// Reclaims every parked group whose TTL has passed. Holds the lock;
/// returns the retirement notifications for the caller to emit.
fn reap_expired_locked(
    shared: &Shared,
    st: &mut EngineState,
    now: Instant,
) -> Vec<LifecycleEvent> {
    let mut events = Vec::new();
    let expired: Vec<u128> = st
        .parked
        .iter()
        .filter(|(_, g)| g.expires_at <= now)
        .map(|(t, _)| *t)
        .collect();
    for token in expired {
        let Some(group) = st.parked.remove(&token) else {
            continue;
        };
        let mut reclaimed = 0u64;
        for id in group.sessions {
            let Some(version) = st
                .sessions
                .get(&id)
                .filter(|s| s.detached)
                .map(|s| s.version)
            else {
                continue;
            };
            shared.dispose_locked(st, id);
            st.open_count -= 1;
            events.extend(shared.release_version_locked(st, version));
            reclaimed += 1;
        }
        shared.metrics.add_expired(reclaimed);
    }
    events
}

/// The token reaper: wakes at the next TTL expiry (or when a token is
/// minted/refreshed) and reclaims expired parked sessions.
fn reaper_loop(shared: &Shared) {
    let mut st = shared.lock_state();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        // Emitted under the lock; the hook contract (non-blocking, never
        // re-enters the engine) makes that safe.
        let retired = reap_expired_locked(shared, &mut st, now);
        shared.emit_lifecycle(retired);
        let wait = st
            .parked
            .values()
            .map(|g| g.expires_at.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_secs(3600))
            .max(Duration::from_millis(10));
        st = match shared.reaper.wait_timeout(st, wait) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

/// Blocks until a ready session is available (returning its decoder, this
/// slice's event budget, and the model version it is pinned to) or
/// shutdown is requested (`None`).
fn next_work(shared: &Shared) -> Option<(u64, SessionDecoder, usize, u64, Arc<CptGpt>)> {
    let mut st = shared.lock_state();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        while let Some(id) = st.run_queue.pop_front() {
            let Some(slot) = st.sessions.get_mut(&id) else {
                continue;
            };
            // Stale queue entries (closed, failed, or re-scheduled
            // sessions) are skipped; only a Queued slot with its
            // decoder in place is runnable.
            if !(slot.run == RunState::Queued && !slot.closed && !slot.failed) {
                continue;
            }
            let Some(decoder) = slot.decoder.take() else {
                continue;
            };
            slot.run = RunState::Running;
            let room = shared.cfg.queue_capacity.saturating_sub(slot.queue.len());
            let budget = room.min(shared.cfg.slice_budget);
            let version = slot.version;
            if let Some(entry) = st.models.get(&version) {
                let model = Arc::clone(&entry.model);
                return Some((id, decoder, budget, version, model));
            }
            // Defensive: the pinned version vanished (the refcount should
            // make this impossible). Fail the session rather than decode
            // with the wrong weights.
            drop(decoder);
            shared.fail_locked(&mut st, id, format!("model version {version} vanished"));
        }
        st = match shared.work.wait(st) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// Extracts a human-readable reason from a panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panic: {s}")
    } else {
        "worker panic (non-string payload)".to_string()
    }
}

/// Blocks until at least one ready session is available, filling `out`
/// with `(id, decoder, event budget)` triples in run-queue order and
/// returning the model version they all share (with its weights), or
/// `None` on shutdown. Every popped session is marked `Running`, so no
/// other worker can touch it until this slice publishes — the same
/// exclusivity invariant as [`next_work`], extended to a batch.
///
/// A batch holds sessions of exactly **one** model version: the first
/// runnable session fixes the version, and runnable sessions pinned to
/// other versions are deferred back to the head of the run queue (in
/// their original order) for the next grab. During a hot-swap drain this
/// costs at most one extra wakeup per mixed prefix; it is what lets the
/// packed forward pass keep using a single weight set.
///
/// The grab is capped at `batch_max` and, when several workers compete,
/// at roughly an even share of the run queue, so one worker cannot
/// serialize the whole pool behind a single giant batch.
fn next_work_batch(
    shared: &Shared,
    out: &mut Vec<(u64, SessionDecoder, usize)>,
) -> Option<(u64, Arc<CptGpt>, Option<Arc<cpt_gpt::QuantDecodeWeights>>)> {
    out.clear();
    let mut st = shared.lock_state();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let share = (st.run_queue.len() / shared.cfg.workers.max(1)).max(1);
        let cap = shared.cfg.batch_max.min(share);
        let mut version: Option<u64> = None;
        let mut deferred: Vec<u64> = Vec::new();
        while out.len() < cap {
            let Some(id) = st.run_queue.pop_front() else {
                break;
            };
            if let Some(slot) = st.sessions.get_mut(&id) {
                if slot.run == RunState::Queued && !slot.closed && !slot.failed {
                    if let Some(v) = version {
                        if v != slot.version {
                            deferred.push(id);
                            continue;
                        }
                    }
                    if let Some(decoder) = slot.decoder.take() {
                        slot.run = RunState::Running;
                        version = Some(slot.version);
                        let room = shared
                            .cfg
                            .queue_capacity
                            .saturating_sub(slot.queue.len());
                        out.push((id, decoder, room.min(shared.cfg.slice_budget)));
                    }
                }
            }
        }
        // Other-version sessions go back to the head in original order.
        for id in deferred.into_iter().rev() {
            st.run_queue.push_front(id);
        }
        if let Some(v) = version {
            if let Some(entry) = st.models.get(&v) {
                let model = Arc::clone(&entry.model);
                let quant = entry.quant.clone();
                let more = !st.run_queue.is_empty();
                drop(st);
                if more {
                    shared.work.notify_one();
                }
                return Some((v, model, quant));
            }
            // Defensive: the pinned version vanished. Fail the grabbed
            // sessions rather than decode with the wrong weights.
            for (id, decoder, _) in out.drain(..) {
                drop(decoder);
                shared.fail_locked(&mut st, id, format!("model version {v} vanished"));
            }
            shared.delivery.notify_all();
            continue;
        }
        st = match shared.work.wait(st) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// One session's in-flight state during a batched slice.
struct BatchEntry {
    id: u64,
    /// `None` once the entry panicked (the decoder is poisoned and is
    /// dropped, never recycled — same rule as the sequential unwind path).
    decoder: Option<SessionDecoder>,
    /// Event budget for this slice (slice budget capped by queue room).
    budget: usize,
    /// Events decoded this slice, published in order at slice end.
    buf: Vec<DecodedEvent>,
    done: bool,
    panic: Option<String>,
    /// The failure was the divergence trip-wire (non-finite event), not a
    /// panic: counted separately, and it triggers the automatic rollback
    /// after the slice publishes.
    tripped: bool,
}

/// Publishes one batch entry's slice under the engine lock, mirroring the
/// sequential worker's publish arms exactly: vanished and close-pending
/// sessions recycle their buffers, force-failed sessions discard the
/// slice, panicked entries deliver their decoded prefix then the terminal
/// failure record, and live sessions re-enqueue / park / finish.
fn publish_entry(shared: &Shared, st: &mut EngineState, version: u64, e: BatchEntry) {
    match e.panic {
        Some(reason) => match st.sessions.get_mut(&e.id) {
            None => {}
            Some(slot) if slot.closed => {
                st.sessions.remove(&e.id);
            }
            Some(slot) => {
                let produced = e.buf.len();
                slot.queue.extend(e.buf.into_iter().map(SessionEvent::Data));
                slot.decoder = None;
                st.queued_total += produced;
                shared.fail_locked(st, e.id, reason);
            }
        },
        None => {
            let decoder = e.decoder.expect("non-panicked entry keeps its decoder");
            match st.sessions.get_mut(&e.id) {
                None => {
                    Shared::recycle(st, shared.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.closed => {
                    st.sessions.remove(&e.id);
                    Shared::recycle(st, shared.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.failed => {
                    slot.decoder = None;
                    Shared::recycle(st, shared.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) => {
                    let produced = e.buf.len();
                    slot.queue.extend(e.buf.into_iter().map(SessionEvent::Data));
                    if e.done {
                        slot.run = RunState::Done;
                        slot.decoder = Some(decoder);
                    } else if slot.queue.len() >= shared.cfg.queue_capacity {
                        slot.run = RunState::Parked;
                        slot.decoder = Some(decoder);
                    } else {
                        slot.run = RunState::Queued;
                        slot.decoder = Some(decoder);
                        st.run_queue.push_back(e.id);
                        shared.work.notify_one();
                    }
                    st.queued_total += produced;
                }
            }
        }
    }
}

/// The batched decode worker: grab up to `batch_max` ready sessions,
/// advance them together one event per round through a [`BatchDecoder`]
/// (one packed per-layer GEMM over all live entries per round), publish
/// each session at slice end, repeat.
///
/// Containment is two-level, preserving the sequential loop's semantics:
/// the `BatchDecoder` contains per-entry panics (the chaos hook fires in
/// the same advance-order slot as the sequential check, and sampling runs
/// per entry), failing only the targeted session while the rest of the
/// batch proceeds; a panic inside the shared forward pass itself is
/// caught here and fails every live entry — the decode states may be
/// mid-scatter, so none of them can be trusted.
fn worker_loop_batched(shared: &Shared) {
    let chaos = shared.chaos;
    // One BatchDecoder per model version this worker has recently served:
    // during a hot-swap drain old and new versions decode side by side.
    // Swept aggressively — steady state is a single entry.
    let mut decoders: HashMap<u64, BatchDecoder> = HashMap::new();
    let mut work: Vec<(u64, SessionDecoder, usize)> = Vec::with_capacity(shared.cfg.batch_max);
    let mut entries: Vec<BatchEntry> = Vec::with_capacity(shared.cfg.batch_max);
    let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(shared.cfg.batch_max);
    let mut slice_idx: u64 = 0;
    while let Some((version, model, quant)) = next_work_batch(shared, &mut work) {
        let t0 = Instant::now();
        if decoders.len() > 4 {
            decoders.retain(|v, _| *v == version);
        }
        let bd = decoders.entry(version).or_insert_with(|| {
            BatchDecoder::with_quant(&model, shared.cfg.batch_max, quant.clone())
        });
        entries.clear();
        entries.extend(work.drain(..).map(|(id, decoder, budget)| BatchEntry {
            id,
            decoder: Some(decoder),
            budget,
            buf: Vec::new(),
            done: false,
            panic: None,
            tripped: false,
        }));
        loop {
            let live: Vec<usize> = (0..entries.len())
                .filter(|&k| {
                    let e = &entries[k];
                    e.panic.is_none() && !e.done && e.buf.len() < e.budget
                })
                .collect();
            if live.is_empty() {
                break;
            }
            let live_ids: Vec<u64> = live.iter().map(|&k| entries[k].id).collect();
            let mut refs: Vec<&mut SessionDecoder> = {
                let mut want = live.iter().copied().peekable();
                let mut refs = Vec::with_capacity(live.len());
                for (k, e) in entries.iter_mut().enumerate() {
                    if want.peek() == Some(&k) {
                        want.next();
                        refs.push(e.decoder.as_mut().expect("live entry keeps its decoder"));
                    }
                }
                refs
            };
            let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                bd.next_events(
                    &model,
                    &mut refs,
                    &mut |slot, events| {
                        let id = live_ids[slot];
                        if chaos.should_panic(id, events) {
                            panic!("chaos: injected panic advancing session {id}");
                        }
                    },
                    &mut outcomes,
                )
            }));
            match round {
                Ok(rows) => {
                    let mut produced = 0u64;
                    for (&k, oc) in live.iter().zip(outcomes.drain(..)) {
                        match oc {
                            RoundOutcome::Event(mut ev) => {
                                let e = &mut entries[k];
                                let emitted = e
                                    .decoder
                                    .as_ref()
                                    .map(|d| d.events_emitted())
                                    .unwrap_or(0);
                                if chaos.should_poison(e.id, emitted) {
                                    ev.iat = f64::NAN;
                                }
                                if !ev.iat.is_finite() || !ev.timestamp.is_finite() {
                                    // Divergence trip-wire: the event is
                                    // garbage, so the decode state is not
                                    // trusted either. Fail the session and
                                    // let the post-slice hook demote the
                                    // version.
                                    e.decoder = None;
                                    e.panic = Some(format!(
                                        "divergence trip-wire: non-finite event \
                                         (iat={}, timestamp={})",
                                        ev.iat, ev.timestamp
                                    ));
                                    e.tripped = true;
                                    shared.metrics.inc_divergence_trip();
                                } else {
                                    e.buf.push(ev);
                                    produced += 1;
                                }
                            }
                            RoundOutcome::Finished => entries[k].done = true,
                            RoundOutcome::Panicked(reason) => {
                                entries[k].decoder = None;
                                entries[k].panic = Some(reason);
                                shared.metrics.inc_worker_panic();
                            }
                        }
                    }
                    shared.metrics.record_batch_round(rows as u64, produced);
                }
                Err(payload) => {
                    let reason = panic_reason(payload.as_ref());
                    shared.metrics.inc_worker_panic();
                    for &k in &live {
                        entries[k].decoder = None;
                        entries[k].panic = Some(reason.clone());
                    }
                    break;
                }
            }
        }
        let total: u64 = entries.iter().map(|e| e.buf.len() as u64).sum();
        shared.metrics.record_slice(t0.elapsed(), total);
        if let Some(delay) = chaos.slice_delay(slice_idx) {
            std::thread::sleep(delay);
        }
        slice_idx += 1;

        let mut st = shared.lock_state();
        let mut tripped = false;
        for e in entries.drain(..) {
            tripped |= e.tripped;
            publish_entry(shared, &mut st, version, e);
        }
        drop(st);
        shared.delivery.notify_all();
        if tripped {
            let events = shared.trip_divergence(version);
            shared.emit_lifecycle(events);
        }
    }
}

/// One decode worker. Dispatches on [`ServeConfig::batch_decode`]: both
/// loops produce bit-identical per-session output; the batched loop packs
/// the forward passes of every session the worker holds into one GEMM per
/// layer.
fn worker_loop(shared: &Shared) {
    if shared.cfg.batch_decode {
        worker_loop_batched(shared)
    } else {
        worker_loop_sequential(shared)
    }
}

/// The sequential decode worker: pull a ready session, advance it by at
/// most its slice budget **under `catch_unwind`**, publish the events,
/// re-enqueue (or park/finish/fail), repeat. A panic while decoding fails
/// only the session being advanced; the worker survives and re-enters its
/// loop.
fn worker_loop_sequential(shared: &Shared) {
    let chaos = shared.chaos;
    // Reused across slices: allocation-free steady state. On a panic the
    // buffer holds the slice's already-decoded prefix.
    let mut buf: Vec<DecodedEvent> = Vec::new();
    let mut slice_idx: u64 = 0;
    while let Some((id, decoder, budget, version, model)) = next_work(shared) {
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut decoder = decoder;
            let mut done = decoder.is_finished();
            let mut trip: Option<String> = None;
            while buf.len() < budget {
                if chaos.should_panic(id, decoder.events_emitted()) {
                    panic!("chaos: injected panic advancing session {id}");
                }
                match decoder.next_event(&model) {
                    Some(mut ev) => {
                        if chaos.should_poison(id, decoder.events_emitted()) {
                            ev.iat = f64::NAN;
                        }
                        if !ev.iat.is_finite() || !ev.timestamp.is_finite() {
                            trip = Some(format!(
                                "divergence trip-wire: non-finite event \
                                 (iat={}, timestamp={})",
                                ev.iat, ev.timestamp
                            ));
                            break;
                        }
                        buf.push(ev);
                    }
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            (decoder, done, trip)
        }));
        shared.metrics.record_slice(t0.elapsed(), buf.len() as u64);
        shared.metrics.add_sequential_tokens(buf.len() as u64);
        if let Some(delay) = chaos.slice_delay(slice_idx) {
            std::thread::sleep(delay);
        }
        slice_idx += 1;

        let mut st = shared.lock_state();
        let mut tripped = false;
        match outcome {
            Ok((decoder, done, trip)) => match st.sessions.get_mut(&id) {
                None => {
                    // Session vanished while running (defensive; close
                    // defers removal, so this should not happen). Recycle
                    // the buffers.
                    Shared::recycle(&mut st, shared.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.closed => {
                    st.sessions.remove(&id);
                    Shared::recycle(&mut st, shared.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if slot.failed => {
                    // Force-failed (drain deadline) while this worker held
                    // the decoder: the terminal Failed record is already
                    // queued, so the slice is discarded — delivering data
                    // after the terminal record would corrupt the stream.
                    slot.decoder = None;
                    Shared::recycle(&mut st, shared.cfg.max_sessions, version, decoder.into_state());
                }
                Some(slot) if trip.is_some() => {
                    // Divergence trip-wire: deliver the clean prefix, fail
                    // the session, drop the decoder (its state produced
                    // garbage — never recycled), demote after unlock.
                    let produced = buf.len();
                    slot.queue.extend(buf.drain(..).map(SessionEvent::Data));
                    slot.decoder = None;
                    st.queued_total += produced;
                    shared.metrics.inc_divergence_trip();
                    shared.fail_locked(
                        &mut st,
                        id,
                        trip.unwrap_or_else(|| "divergence trip-wire".to_string()),
                    );
                    drop(decoder);
                    tripped = true;
                }
                Some(slot) => {
                    let produced = buf.len();
                    slot.queue.extend(buf.drain(..).map(SessionEvent::Data));
                    if done {
                        slot.run = RunState::Done;
                        slot.decoder = Some(decoder);
                    } else if slot.queue.len() >= shared.cfg.queue_capacity {
                        slot.run = RunState::Parked;
                        slot.decoder = Some(decoder);
                    } else {
                        slot.run = RunState::Queued;
                        slot.decoder = Some(decoder);
                        st.run_queue.push_back(id);
                        shared.work.notify_one();
                    }
                    st.queued_total += produced;
                }
            },
            Err(payload) => {
                // Contained: the decoder died with the unwind (its state
                // may be corrupt, so it is never recycled). Publish the
                // clean prefix, then the terminal failure record.
                shared.metrics.inc_worker_panic();
                match st.sessions.get_mut(&id) {
                    None => {}
                    Some(slot) if slot.closed => {
                        st.sessions.remove(&id);
                    }
                    Some(slot) => {
                        let produced = buf.len();
                        slot.queue.extend(buf.drain(..).map(SessionEvent::Data));
                        slot.decoder = None;
                        st.queued_total += produced;
                        shared.fail_locked(&mut st, id, panic_reason(payload.as_ref()));
                    }
                }
            }
        }
        drop(st);
        buf.clear();
        shared.delivery.notify_all();
        if tripped {
            let events = shared.trip_divergence(version);
            shared.emit_lifecycle(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_zeroes() {
        let ok = ServeConfig::new(2);
        assert!(ok.validate().is_ok());
        for (field, cfg) in [
            ("workers", ServeConfig { workers: 0, ..ok }),
            ("max_sessions", ServeConfig { max_sessions: 0, ..ok }),
            ("queue_capacity", ServeConfig { queue_capacity: 0, ..ok }),
            ("slice_budget", ServeConfig { slice_budget: 0, ..ok }),
            (
                "queue_watermark",
                ServeConfig {
                    queue_watermark: 1,
                    queue_capacity: 64,
                    ..ok
                },
            ),
            ("detach_ttl_secs", ServeConfig { detach_ttl_secs: 0, ..ok }),
            ("read_timeout_ms", ServeConfig { read_timeout_ms: 0, ..ok }),
            ("max_connections", ServeConfig { max_connections: 0, ..ok }),
            ("batch_max", ServeConfig { batch_max: 0, ..ok }),
            (
                "quantized",
                ServeConfig {
                    quantized: true,
                    batch_decode: false,
                    ..ok
                },
            ),
        ] {
            let got = cfg.validate();
            assert!(
                matches!(&got, Err(ServeError::InvalidConfig { field: f, .. }) if f == field),
                "expected InvalidConfig({field}), got {got:?}"
            );
        }
    }

    #[test]
    fn detach_tokens_round_trip_as_hex() {
        let t = DetachToken(0x00ab_cdef_0123_4567_89ab_cdef_0123_4567);
        let s = t.to_string();
        assert_eq!(s.len(), 32);
        let back: DetachToken = s.parse().expect("hex parses");
        assert_eq!(back, t);
        assert!(
            matches!("not-hex".parse::<DetachToken>(), Err(ServeError::UnknownToken)),
            "garbage tokens are typed errors"
        );
    }

    #[test]
    fn session_events_classify_data_and_failure() {
        let fail = SessionEvent::Failed {
            reason: "x".to_string(),
        };
        assert!(fail.is_failure());
        assert_eq!(fail.failure(), Some("x"));
        assert!(fail.data().is_none());
    }
}
