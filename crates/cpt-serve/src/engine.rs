//! The continuous-batching serving engine.
//!
//! A fixed pool of worker threads pulls *ready* sessions from a run
//! queue, advances each by at most [`ServeConfig::slice_budget`] events
//! (one KV-cached decode step per event over the session's own
//! [`cpt_gpt::DecodeState`]), appends the events to the session's bounded
//! queue, and re-enqueues the session — no thread is ever dedicated to a
//! session, so thousands of concurrent sessions run on a handful of
//! workers.
//!
//! **Backpressure** is two-level. Per session: a bounded event queue; a
//! session whose consumer lags is *parked* (not re-enqueued) until
//! `next_events` drains below capacity, so a slow reader costs nothing but
//! its own queue memory. Globally: admission control sheds `open_session`
//! with [`ServeError::Overloaded`] once the session cap or the total
//! queued-events watermark is hit.
//!
//! **Determinism**: a session's event sequence is a pure function of
//! `(model, StreamParams)`. The run queue guarantees at most one worker
//! ever holds a session's decoder, each session owns its RNG (splitmix64
//! from the session seed, the same discipline as the parallel batch
//! generator), and [`cpt_gpt::DecodeState::reset`] makes free-list reuse
//! byte-equivalent to fresh allocation — so output is bit-identical at any
//! worker count, including 1.
//!
//! **Allocation**: steady-state serving is allocation-free per event. All
//! decode buffers live in the session's `DecodeState` (recycled through a
//! free-list on close); each worker reuses one slice buffer; per-session
//! queues only grow to the configured capacity once.

#![deny(clippy::unwrap_used)]

use crate::error::ServeError;
use crate::metrics::{Metrics, StatsSnapshot};
use cpt_gpt::{CptGpt, DecodeState, SessionDecoder, SessionEvent, StreamParams};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serving-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Decode worker threads.
    pub workers: usize,
    /// Admission cap on concurrently open sessions.
    pub max_sessions: usize,
    /// Bound on each session's undelivered-event queue; a full queue parks
    /// the session until its consumer drains.
    pub queue_capacity: usize,
    /// Maximum events a worker decodes for one session per scheduling
    /// slice before re-enqueueing it (fairness knob).
    pub slice_budget: usize,
    /// Global admission watermark on total queued events across sessions.
    pub queue_watermark: usize,
}

impl ServeConfig {
    /// Defaults tuned for a small host: `workers` decode threads, a 4096-
    /// session cap, 256-event queues, 64-event slices.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers,
            max_sessions: 4096,
            queue_capacity: 256,
            slice_budget: 64,
            queue_watermark: 1 << 20,
        }
    }

    /// Checks every field against its domain, returning the first
    /// violation as [`ServeError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), ServeError> {
        fn bad(field: &str, message: impl Into<String>) -> ServeError {
            ServeError::InvalidConfig {
                field: field.to_string(),
                message: message.into(),
            }
        }
        if self.workers == 0 {
            return Err(bad("workers", "must be at least 1"));
        }
        if self.max_sessions == 0 {
            return Err(bad("max_sessions", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(bad("queue_capacity", "must be at least 1"));
        }
        if self.slice_budget == 0 {
            return Err(bad("slice_budget", "must be at least 1"));
        }
        if self.queue_watermark < self.queue_capacity {
            return Err(bad(
                "queue_watermark",
                format!(
                    "must be at least queue_capacity ({}), got {}",
                    self.queue_capacity, self.queue_watermark
                ),
            ));
        }
        Ok(())
    }
}

/// Opaque session identifier handed out by [`ServeHandle::open_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Events delivered by one [`ServeHandle::next_events`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// Events in decode order (possibly empty if the wait timed out).
    pub events: Vec<SessionEvent>,
    /// True once the session's decode is complete *and* its queue is fully
    /// drained; no further events will ever arrive.
    pub finished: bool,
}

/// Scheduling state of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// In the run queue, awaiting a worker.
    Queued,
    /// A worker currently holds the decoder.
    Running,
    /// Event queue full; waiting for the consumer to drain.
    Parked,
    /// Decode complete; only delivery remains.
    Done,
}

struct SessionSlot {
    /// The decoder; `None` exactly while a worker runs the session.
    decoder: Option<SessionDecoder>,
    /// Undelivered events, bounded by `queue_capacity`.
    queue: VecDeque<SessionEvent>,
    run: RunState,
    /// Close was requested while a worker held the decoder; the worker
    /// disposes of the session at slice end.
    closed: bool,
}

struct EngineState {
    sessions: HashMap<u64, SessionSlot>,
    run_queue: VecDeque<u64>,
    /// Recycled decode states, capped at `max_sessions`.
    free_states: Vec<DecodeState>,
    /// Total undelivered events across all sessions (watermark gauge).
    queued_total: usize,
    /// Open sessions (excludes close-pending ones still in `sessions`).
    open_count: usize,
    next_id: u64,
}

struct Shared {
    model: Arc<CptGpt>,
    cfg: ServeConfig,
    state: Mutex<EngineState>,
    /// Workers wait here for the run queue to fill.
    work: Condvar,
    /// Consumers wait here for events to arrive.
    delivery: Condvar,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    /// Locks the engine state, recovering from a poisoned mutex (a panic
    /// in one worker must not wedge the whole server).
    fn lock_state(&self) -> MutexGuard<'_, EngineState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn recycle(state: &mut EngineState, cap: usize, decode: DecodeState) {
        if state.free_states.len() < cap {
            state.free_states.push(decode);
        }
    }
}

/// The serving engine: owns the worker pool. Obtain a [`ServeHandle`] via
/// [`Engine::handle`] to open and drive sessions; drop (or
/// [`Engine::shutdown`]) to stop the workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Validates `cfg`, spawns the worker pool, and returns the running
    /// engine.
    pub fn start(model: Arc<CptGpt>, cfg: ServeConfig) -> Result<Engine, ServeError> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            model,
            cfg,
            state: Mutex::new(EngineState {
                sessions: HashMap::new(),
                run_queue: VecDeque::new(),
                free_states: Vec::new(),
                queued_total: 0,
                open_count: 0,
                next_id: 1,
            }),
            work: Condvar::new(),
            delivery: Condvar::new(),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpt-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| ServeError::InvalidConfig {
                        field: "workers".to_string(),
                        message: format!("cannot spawn worker thread: {e}"),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Engine { shared, workers })
    }

    /// A cloneable handle for opening and driving sessions.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the workers and joins them. Open sessions are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        self.shared.delivery.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Cloneable front end to a running [`Engine`]. All methods are safe to
/// call from any number of threads concurrently.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Admits a new session, or sheds it with [`ServeError::Overloaded`]
    /// when the session cap or queued-events watermark is exceeded.
    ///
    /// The session's decode state comes from the free-list when one is
    /// available, so steady-state open/close cycles allocate nothing.
    pub fn open_session(&self, params: StreamParams) -> Result<SessionId, ServeError> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let mut st = shared.lock_state();
        if st.open_count >= shared.cfg.max_sessions
            || st.queued_total >= shared.cfg.queue_watermark
        {
            let err = ServeError::Overloaded {
                open: st.open_count,
                cap: shared.cfg.max_sessions,
                queued: st.queued_total,
                watermark: shared.cfg.queue_watermark,
            };
            shared.metrics.inc_shed();
            return Err(err);
        }
        let decoder = match st.free_states.pop() {
            Some(state) => shared.model.open_session_reusing(params, state)?,
            None => shared.model.open_session(params)?,
        };
        let id = st.next_id;
        st.next_id += 1;
        st.sessions.insert(
            id,
            SessionSlot {
                decoder: Some(decoder),
                queue: VecDeque::new(),
                run: RunState::Queued,
                closed: false,
            },
        );
        st.open_count += 1;
        st.run_queue.push_back(id);
        shared.metrics.inc_opened();
        drop(st);
        shared.work.notify_one();
        Ok(SessionId(id))
    }

    /// Delivers up to `max` decoded events in order, blocking up to `wait`
    /// while the queue is empty and the session is still decoding. Returns
    /// `finished = true` once decode is complete and the queue is drained.
    ///
    /// Draining a parked session re-enqueues it — this is the consumer
    /// half of the per-session backpressure loop.
    pub fn next_events(
        &self,
        id: SessionId,
        max: usize,
        wait: Duration,
    ) -> Result<EventBatch, ServeError> {
        let shared = &self.shared;
        let max = max.max(1);
        let deadline = Instant::now() + wait;
        let mut st = shared.lock_state();
        loop {
            {
                let slot = st
                    .sessions
                    .get(&id.0)
                    .filter(|s| !s.closed)
                    .ok_or(ServeError::UnknownSession(id.0))?;
                if !slot.queue.is_empty() || slot.run == RunState::Done {
                    break;
                }
            }
            let now = Instant::now();
            if now >= deadline || shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            st = match shared.delivery.wait_timeout(st, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }

        let (events, finished, wake) = {
            let slot = st
                .sessions
                .get_mut(&id.0)
                .filter(|s| !s.closed)
                .ok_or(ServeError::UnknownSession(id.0))?;
            let n = slot.queue.len().min(max);
            let events: Vec<SessionEvent> = slot.queue.drain(..n).collect();
            let wake = slot.run == RunState::Parked
                && slot.queue.len() < shared.cfg.queue_capacity;
            if wake {
                slot.run = RunState::Queued;
            }
            let finished = slot.run == RunState::Done && slot.queue.is_empty();
            (events, finished, wake)
        };
        st.queued_total -= events.len();
        if wake {
            st.run_queue.push_back(id.0);
        }
        drop(st);
        if wake {
            shared.work.notify_one();
        }
        shared.metrics.add_delivered(events.len() as u64);
        Ok(EventBatch { events, finished })
    }

    /// Closes a session, recycling its decode buffers into the free-list.
    /// Undelivered events are discarded.
    pub fn close_session(&self, id: SessionId) -> Result<(), ServeError> {
        let shared = &self.shared;
        let mut st = shared.lock_state();
        let running = {
            let slot = st
                .sessions
                .get_mut(&id.0)
                .filter(|s| !s.closed)
                .ok_or(ServeError::UnknownSession(id.0))?;
            slot.run == RunState::Running
        };
        if running {
            // A worker holds the decoder; mark for disposal at slice end.
            let dropped = if let Some(slot) = st.sessions.get_mut(&id.0) {
                slot.closed = true;
                let n = slot.queue.len();
                slot.queue.clear();
                n
            } else {
                0
            };
            st.queued_total -= dropped;
        } else if let Some(slot) = st.sessions.remove(&id.0) {
            st.queued_total -= slot.queue.len();
            if let Some(decoder) = slot.decoder {
                Shared::recycle(&mut st, shared.cfg.max_sessions, decoder.into_state());
            }
        }
        st.open_count -= 1;
        shared.metrics.inc_closed();
        Ok(())
    }

    /// Sessions currently open.
    pub fn sessions_open(&self) -> usize {
        self.shared.lock_state().open_count
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let (open, queued, free) = {
            let st = self.shared.lock_state();
            (st.open_count, st.queued_total, st.free_states.len())
        };
        self.shared
            .metrics
            .snapshot(open, queued, free, self.shared.cfg.workers)
    }

    /// True once the engine refuses new work.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Blocks until a ready session is available (returning its decoder and
/// this slice's event budget) or shutdown is requested (`None`).
fn next_work(shared: &Shared) -> Option<(u64, SessionDecoder, usize)> {
    let mut st = shared.lock_state();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        while let Some(id) = st.run_queue.pop_front() {
            if let Some(slot) = st.sessions.get_mut(&id) {
                // Stale queue entries (closed or re-scheduled sessions) are
                // skipped; only a Queued slot with its decoder in place is
                // runnable.
                if slot.run == RunState::Queued && !slot.closed {
                    if let Some(decoder) = slot.decoder.take() {
                        slot.run = RunState::Running;
                        let room = shared
                            .cfg
                            .queue_capacity
                            .saturating_sub(slot.queue.len());
                        let budget = room.min(shared.cfg.slice_budget);
                        return Some((id, decoder, budget));
                    }
                }
            }
        }
        st = match shared.work.wait(st) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

/// One decode worker: pull a ready session, advance it by at most its
/// slice budget, publish the events, re-enqueue (or park/finish), repeat.
fn worker_loop(shared: &Shared) {
    let model = Arc::clone(&shared.model);
    // Reused across slices: allocation-free steady state.
    let mut buf: Vec<SessionEvent> = Vec::new();
    while let Some((id, mut decoder, budget)) = next_work(shared) {
        let t0 = Instant::now();
        let mut done = decoder.is_finished();
        while buf.len() < budget {
            match decoder.next_event(&model) {
                Some(ev) => buf.push(ev),
                None => {
                    done = true;
                    break;
                }
            }
        }
        shared.metrics.record_slice(t0.elapsed(), buf.len() as u64);

        let mut st = shared.lock_state();
        match st.sessions.get_mut(&id) {
            None => {
                // Session vanished while running (defensive; close defers
                // removal, so this should not happen). Recycle the buffers.
                Shared::recycle(&mut st, shared.cfg.max_sessions, decoder.into_state());
            }
            Some(slot) if slot.closed => {
                st.sessions.remove(&id);
                Shared::recycle(&mut st, shared.cfg.max_sessions, decoder.into_state());
            }
            Some(slot) => {
                let produced = buf.len();
                slot.queue.extend(buf.drain(..));
                if done {
                    slot.run = RunState::Done;
                    slot.decoder = Some(decoder);
                } else if slot.queue.len() >= shared.cfg.queue_capacity {
                    slot.run = RunState::Parked;
                    slot.decoder = Some(decoder);
                } else {
                    slot.run = RunState::Queued;
                    slot.decoder = Some(decoder);
                    st.run_queue.push_back(id);
                    shared.work.notify_one();
                }
                st.queued_total += produced;
            }
        }
        drop(st);
        buf.clear();
        shared.delivery.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_zeroes() {
        let ok = ServeConfig::new(2);
        assert!(ok.validate().is_ok());
        for (field, cfg) in [
            ("workers", ServeConfig { workers: 0, ..ok }),
            ("max_sessions", ServeConfig { max_sessions: 0, ..ok }),
            ("queue_capacity", ServeConfig { queue_capacity: 0, ..ok }),
            ("slice_budget", ServeConfig { slice_budget: 0, ..ok }),
            (
                "queue_watermark",
                ServeConfig {
                    queue_watermark: 1,
                    queue_capacity: 64,
                    ..ok
                },
            ),
        ] {
            match cfg.validate() {
                Err(ServeError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig({field}), got {other:?}"),
            }
        }
    }
}
