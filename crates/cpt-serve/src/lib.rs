//! cpt-serve: a streaming multi-UE generation service over a trained
//! CPT-GPT model.
//!
//! The paper's generator is a batch tool: train, then emit N streams and
//! exit. Real control-plane workloads are *open-loop* — UEs attach and
//! detach continuously, and a traffic generator that feeds a live test
//! harness must behave like a service. This crate provides that service
//! layer:
//!
//! - [`Engine`] / [`ServeHandle`]: a continuous-batching scheduler. Every
//!   open session is a lazily-advanced KV-cached decode stream; a fixed
//!   worker pool pulls ready sessions from a run queue, advances each by a
//!   bounded slice of events, and re-enqueues — thousands of sessions on a
//!   handful of threads, no per-session thread.
//! - [`server`]: a line-delimited-JSON TCP front end (`cptgen serve`)
//!   built on std threads only.
//! - [`loadgen`]: a load-generator client (`cptgen loadgen`) that opens
//!   sessions at a target rate and reports achieved throughput and
//!   latency percentiles.
//!
//! Determinism contract: a session's event stream is a pure function of
//! `(model, seed, params)` — bit-identical at any worker count and across
//! decode-state reuse. See `DESIGN.md` §12.
//!
//! Failure model (DESIGN.md §14): the service is *crash-only*. Worker
//! panics are contained per-session ([`engine::SessionEvent::Failed`]),
//! drains are bounded ([`ServeHandle::drain`]), disconnects can park
//! sessions under a capability token ([`engine::DetachToken`]) instead of
//! losing them, and every failure path is exercised deterministically by
//! [`chaos::ChaosPlan`].

#![deny(clippy::unwrap_used)]

pub mod chaos;
pub mod engine;
pub mod error;
pub mod lifecycle;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod server;
mod shard;
pub mod steer;

pub use chaos::ChaosPlan;
pub use engine::{
    DetachToken, DrainReport, Engine, EventBatch, LifecycleEvent, ServeConfig, ServeHandle,
    SessionEvent, SessionId,
};
pub use error::ServeError;
pub use lifecycle::{Director, FineTuneSpec, PublishOutcome};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, WireMode};
pub use metrics::{LatencyHistogram, Metrics, SnapshotGauges, StatsSnapshot};
pub use registry::{Manifest, RecoveryReport, Registry, RegistryError, VersionRecord, VersionState};
pub use server::{serve, Server, ServerConfig};

/// A validated degree of parallelism for a thread/worker-count flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// The thread count to actually use.
    pub threads: usize,
    /// Set when the request exceeded the machine and was clamped down;
    /// holds the originally requested count.
    pub clamped_from: Option<usize>,
}

/// Validates a user-supplied thread/worker/session-count flag against the
/// machine.
///
/// - `None` → all available cores.
/// - `Some(0)` → [`ServeError::InvalidConfig`]: zero threads can never
///   make progress, so it is a usage error, not something to round up.
/// - `Some(n)` with `n` above the available cores → clamped to the core
///   count (recorded in [`Parallelism::clamped_from`] so the CLI can warn)
///   rather than silently oversubscribing the host. Determinism does not
///   depend on the worker count, so clamping never changes output.
pub fn resolve_parallelism(
    requested: Option<usize>,
    flag: &str,
) -> Result<Parallelism, ServeError> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    match requested {
        None => Ok(Parallelism {
            threads: cores,
            clamped_from: None,
        }),
        Some(0) => Err(ServeError::InvalidConfig {
            field: flag.to_string(),
            message: "must be at least 1".to_string(),
        }),
        Some(n) if n > cores => Ok(Parallelism {
            threads: cores,
            clamped_from: Some(n),
        }),
        Some(n) => Ok(Parallelism {
            threads: n,
            clamped_from: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_is_a_typed_error() {
        match resolve_parallelism(Some(0), "--workers") {
            Err(ServeError::InvalidConfig { field, .. }) => {
                assert_eq!(field, "--workers");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn oversubscription_is_clamped_with_provenance() {
        let p = resolve_parallelism(Some(1_000_000), "--threads")
            .expect("clamping is not an error");
        assert_eq!(p.clamped_from, Some(1_000_000));
        assert!(p.threads >= 1);
        assert!(p.threads < 1_000_000);
    }

    #[test]
    fn in_range_and_default_pass_through() {
        let p = resolve_parallelism(Some(1), "--threads").expect("1 is valid");
        assert_eq!(p.threads, 1);
        assert_eq!(p.clamped_from, None);
        let d = resolve_parallelism(None, "--threads").expect("default is valid");
        assert!(d.threads >= 1);
        assert_eq!(d.clamped_from, None);
    }
}
