//! Length-prefixed binary framing — the negotiated alternative to JSON
//! lines.
//!
//! JSON lines are the scriptable default, but at millions of events per
//! second serde dominates the wire cost: every response allocates and
//! formats text, every float is printed and re-parsed. This codec is the
//! fast path a client opts into by sending a two-byte preamble right
//! after connect:
//!
//! ```text
//! client → server:  0xCB 0x01            # magic, wire version
//! ```
//!
//! The server decides the codec by peeking the first byte: `{` (the start
//! of any JSON-lines request) keeps the connection in JSON mode, [`MAGIC`]
//! switches it to binary. Either side then speaks *frames*:
//!
//! ```text
//! frame    := length payload
//! length   := LEB128 varint (payload bytes; ≤ MAX_FRAME_LEN)
//! payload  := opcode body
//! opcode   := 1 byte — 0x01.. requests, 0x81.. responses
//! ```
//!
//! Bodies are fixed-layout little-endian: `u64` fields are 8 bytes LE,
//! counts/sizes are varints, strings are varint-length-prefixed UTF-8,
//! `Option<T>` is a presence byte (0/1) followed by `T` when present, and
//! `f64` travels as its IEEE-754 bit pattern (`to_bits`/`from_bits`), so
//! timestamps survive the wire bit-exactly — the binary analogue of the
//! `float_roundtrip` guarantee the JSON path gets from serde.
//!
//! The hot frame is `events` (opcode 0x82): each event is a one-byte tag
//! (data/failure) and a fixed 19-byte data layout, encoded straight into a
//! pooled output buffer ([`crate::pool`]) with no intermediate values —
//! steady-state deliver is allocation-free end to end. The two cold,
//! schema-heavy responses (`stats`, `versions`) embed their JSON encoding
//! as a single string field instead of getting bespoke layouts: they are
//! issued once per run, not per event, and this keeps their (evolving,
//! serde-default-tolerant) schema out of the fixed wire format.
//!
//! Decoding is total: any byte sequence — truncated, bit-flipped, forged —
//! decodes to a typed [`ProtocolError`], never a panic. Every field read
//! is bounds-checked, every enum byte is range-checked, and a payload must
//! be consumed exactly ([`ProtocolError::Trailing`] otherwise).

#![deny(clippy::unwrap_used)]

use crate::engine::SessionEvent;
use crate::protocol::{ErrorKind, Request, Response};
use cpt_trace::EventType;
use std::io::{self, Read, Write};

/// First preamble byte of a binary-mode connection. Deliberately not
/// valid UTF-8 ASCII so it can never collide with a JSON-lines request
/// (which always starts with `{`).
pub const MAGIC: u8 = 0xCB;

/// Wire-format version carried in the preamble's second byte.
pub const WIRE_VERSION: u8 = 0x01;

/// Hard cap on a frame payload; larger lengths are rejected before any
/// allocation, so a corrupt or hostile length prefix cannot OOM the
/// server.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Typed decode/IO-framing failure. The decoder returns these for *any*
/// malformed input; it never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the field being read.
    Truncated,
    /// A varint ran past 10 bytes (not a canonical u64 encoding).
    BadVarint,
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize {
        /// The claimed length.
        len: u64,
    },
    /// The opcode byte names no known request/response.
    UnknownOpcode(u8),
    /// An enum byte was out of range for its field.
    BadTag {
        /// Which field the byte belonged to.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The payload was longer than its decoded content.
    Trailing {
        /// Unconsumed bytes.
        extra: usize,
    },
    /// The connection preamble had the wrong magic or version.
    BadPreamble {
        /// The two bytes received.
        got: [u8; 2],
    },
    /// A `stats`/`versions` JSON blob failed to (de)serialize.
    Json(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated mid-field"),
            ProtocolError::BadVarint => write!(f, "varint overflows u64"),
            ProtocolError::Oversize { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtocolError::BadTag { field, value } => {
                write!(f, "value {value} out of range for {field}")
            }
            ProtocolError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtocolError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            ProtocolError::BadPreamble { got } => {
                write!(
                    f,
                    "bad preamble 0x{:02x} 0x{:02x} (want 0x{MAGIC:02x} 0x{WIRE_VERSION:02x})",
                    got[0], got[1]
                )
            }
            ProtocolError::Json(msg) => write!(f, "embedded JSON blob: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A framing-layer failure: transport IO or a malformed frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The frame itself was malformed.
    Protocol(ProtocolError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<ProtocolError> for FrameError {
    fn from(e: ProtocolError) -> Self {
        FrameError::Protocol(e)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put(out, x);
        }
    }
}

/// Bounds-checked sequential reader over one payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn varint(&mut self) -> Result<u64, ProtocolError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            if shift == 9 && byte > 1 {
                // The 10th byte can only carry the u64's top bit.
                return Err(ProtocolError::BadVarint);
            }
            v |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ProtocolError::BadVarint)
    }

    /// A varint that must also fit in `usize` and under the frame cap —
    /// used for every length/count so a forged count cannot drive a huge
    /// allocation.
    fn len(&mut self) -> Result<usize, ProtocolError> {
        let v = self.varint()?;
        if v > MAX_FRAME_LEN as u64 {
            return Err(ProtocolError::Oversize { len: v });
        }
        Ok(v as usize)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(ProtocolError::BadTag { field, value }),
        }
    }

    fn opt<T>(
        &mut self,
        field: &'static str,
        read: impl FnOnce(&mut Self) -> Result<T, ProtocolError>,
    ) -> Result<Option<T>, ProtocolError> {
        if self.bool(field)? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    fn finish(self) -> Result<(), ProtocolError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(ProtocolError::Trailing { extra });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

const OP_OPEN: u8 = 0x01;
const OP_NEXT: u8 = 0x02;
const OP_CLOSE: u8 = 0x03;
const OP_DETACH: u8 = 0x04;
const OP_REATTACH: u8 = 0x05;
const OP_DRAIN: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_PUBLISH: u8 = 0x08;
const OP_ROLLBACK: u8 = 0x09;
const OP_FINETUNE: u8 = 0x0A;
const OP_VERSIONS: u8 = 0x0B;
const OP_SHUTDOWN: u8 = 0x0C;

const RESP_OPENED: u8 = 0x81;
const RESP_EVENTS: u8 = 0x82;
const RESP_CLOSED: u8 = 0x83;
const RESP_DETACHED: u8 = 0x84;
const RESP_REATTACHED: u8 = 0x85;
const RESP_DRAINED: u8 = 0x86;
const RESP_STATS: u8 = 0x87;
const RESP_PUBLISHED: u8 = 0x88;
const RESP_ROLLED_BACK: u8 = 0x89;
const RESP_FINETUNE_STARTED: u8 = 0x8A;
const RESP_VERSIONS: u8 = 0x8B;
const RESP_BYE: u8 = 0x8C;
const RESP_ERROR: u8 = 0x8D;

fn kind_to_byte(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Overloaded => 0,
        ErrorKind::UnknownSession => 1,
        ErrorKind::InvalidRequest => 2,
        ErrorKind::ShuttingDown => 3,
        ErrorKind::Draining => 4,
        ErrorKind::UnknownToken => 5,
        ErrorKind::Registry => 6,
        ErrorKind::UnknownVersion => 7,
        ErrorKind::NoPreviousVersion => 8,
        ErrorKind::NoRegistry => 9,
        ErrorKind::Busy => 10,
        ErrorKind::Internal => 11,
    }
}

fn kind_from_byte(value: u8) -> Result<ErrorKind, ProtocolError> {
    Ok(match value {
        0 => ErrorKind::Overloaded,
        1 => ErrorKind::UnknownSession,
        2 => ErrorKind::InvalidRequest,
        3 => ErrorKind::ShuttingDown,
        4 => ErrorKind::Draining,
        5 => ErrorKind::UnknownToken,
        6 => ErrorKind::Registry,
        7 => ErrorKind::UnknownVersion,
        8 => ErrorKind::NoPreviousVersion,
        9 => ErrorKind::NoRegistry,
        10 => ErrorKind::Busy,
        11 => ErrorKind::Internal,
        value => {
            return Err(ProtocolError::BadTag {
                field: "error kind",
                value,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Events (the hot payload)
// ---------------------------------------------------------------------------

const EVENT_DATA: u8 = 0;
const EVENT_FAILED: u8 = 1;

/// Appends one session event in the canonical binary layout. Also the
/// basis of the loadgen output digest: two event streams are bit-identical
/// iff their encodings are.
pub fn encode_event(ev: &SessionEvent, out: &mut Vec<u8>) {
    match ev {
        SessionEvent::Data(d) => {
            out.push(EVENT_DATA);
            put_varint(out, d.stream as u64);
            out.push(d.event_type.index() as u8);
            put_f64(out, d.iat);
            put_f64(out, d.timestamp);
            out.push(u8::from(d.last_in_stream));
        }
        SessionEvent::Failed { reason } => {
            out.push(EVENT_FAILED);
            put_str(out, reason);
        }
    }
}

fn decode_event(c: &mut Cursor<'_>) -> Result<SessionEvent, ProtocolError> {
    match c.u8()? {
        EVENT_DATA => {
            let stream = c.len()?;
            let type_byte = c.u8()?;
            let event_type = EventType::from_index(type_byte as usize).ok_or(
                ProtocolError::BadTag {
                    field: "event type",
                    value: type_byte,
                },
            )?;
            let iat = c.f64()?;
            let timestamp = c.f64()?;
            let last_in_stream = c.bool("last_in_stream")?;
            Ok(SessionEvent::Data(cpt_gpt::SessionEvent {
                stream,
                event_type,
                iat,
                timestamp,
                last_in_stream,
            }))
        }
        EVENT_FAILED => Ok(SessionEvent::Failed {
            reason: c.string()?,
        }),
        value => Err(ProtocolError::BadTag {
            field: "event tag",
            value,
        }),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Appends a request payload (opcode + body; no length prefix — framing is
/// [`write_frame`]'s job).
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Open {
            seed,
            streams,
            device,
            max_stream_len,
        } => {
            out.push(OP_OPEN);
            put_u64(out, *seed);
            put_varint(out, *streams as u64);
            put_str(out, device);
            put_opt(out, max_stream_len, |o, v| put_varint(o, *v as u64));
        }
        Request::Next {
            session,
            max,
            wait_ms,
        } => {
            out.push(OP_NEXT);
            put_u64(out, *session);
            put_varint(out, *max as u64);
            put_varint(out, *wait_ms);
        }
        Request::Close { session } => {
            out.push(OP_CLOSE);
            put_u64(out, *session);
        }
        Request::Detach => out.push(OP_DETACH),
        Request::Reattach { token } => {
            out.push(OP_REATTACH);
            put_str(out, token);
        }
        Request::Drain { timeout_ms } => {
            out.push(OP_DRAIN);
            put_varint(out, *timeout_ms);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Publish { path, version } => {
            out.push(OP_PUBLISH);
            put_opt(out, path, |o, s| put_str(o, s));
            put_opt(out, version, |o, v| put_u64(o, *v));
        }
        Request::Rollback => out.push(OP_ROLLBACK),
        Request::Finetune { trace, epochs, seed } => {
            out.push(OP_FINETUNE);
            put_str(out, trace);
            put_opt(out, epochs, |o, v| put_varint(o, *v as u64));
            put_opt(out, seed, |o, v| put_u64(o, *v));
        }
        Request::Versions => out.push(OP_VERSIONS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
    }
}

/// Decodes one request payload, which must be consumed exactly.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        OP_OPEN => Request::Open {
            seed: c.u64()?,
            streams: c.len()?,
            device: c.string()?,
            max_stream_len: c.opt("max_stream_len presence", |c| c.len())?,
        },
        OP_NEXT => Request::Next {
            session: c.u64()?,
            max: c.len()?,
            wait_ms: c.varint()?,
        },
        OP_CLOSE => Request::Close { session: c.u64()? },
        OP_DETACH => Request::Detach,
        OP_REATTACH => Request::Reattach { token: c.string()? },
        OP_DRAIN => Request::Drain {
            timeout_ms: c.varint()?,
        },
        OP_STATS => Request::Stats,
        OP_PUBLISH => Request::Publish {
            path: c.opt("path presence", |c| c.string())?,
            version: c.opt("version presence", |c| c.u64())?,
        },
        OP_ROLLBACK => Request::Rollback,
        OP_FINETUNE => Request::Finetune {
            trace: c.string()?,
            epochs: c.opt("epochs presence", |c| c.len())?,
            seed: c.opt("seed presence", |c| c.u64())?,
        },
        OP_VERSIONS => Request::Versions,
        OP_SHUTDOWN => Request::Shutdown,
        op => return Err(ProtocolError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Appends a response payload. Fallible only for the two cold responses
/// (`stats`, `versions`) that embed a JSON blob.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
    match resp {
        Response::Opened { session } => {
            out.push(RESP_OPENED);
            put_u64(out, *session);
        }
        Response::Events {
            session,
            events,
            finished,
        } => {
            out.push(RESP_EVENTS);
            put_u64(out, *session);
            out.push(u8::from(*finished));
            put_varint(out, events.len() as u64);
            for ev in events {
                encode_event(ev, out);
            }
        }
        Response::Closed { session } => {
            out.push(RESP_CLOSED);
            put_u64(out, *session);
        }
        Response::Detached { token } => {
            out.push(RESP_DETACHED);
            put_str(out, token);
        }
        Response::Reattached { sessions } => {
            out.push(RESP_REATTACHED);
            put_varint(out, sessions.len() as u64);
            for s in sessions {
                put_u64(out, *s);
            }
        }
        Response::Drained {
            completed,
            force_failed,
        } => {
            out.push(RESP_DRAINED);
            put_u64(out, *completed);
            put_u64(out, *force_failed);
        }
        Response::Stats { .. } => {
            out.push(RESP_STATS);
            let blob =
                serde_json::to_string(resp).map_err(|e| ProtocolError::Json(e.to_string()))?;
            put_str(out, &blob);
        }
        Response::Published { version, previous } => {
            out.push(RESP_PUBLISHED);
            put_u64(out, *version);
            put_opt(out, previous, |o, v| put_u64(o, *v));
        }
        Response::RolledBack { demoted, live } => {
            out.push(RESP_ROLLED_BACK);
            put_u64(out, *demoted);
            put_u64(out, *live);
        }
        Response::FinetuneStarted { job } => {
            out.push(RESP_FINETUNE_STARTED);
            put_u64(out, *job);
        }
        Response::Versions { .. } => {
            out.push(RESP_VERSIONS);
            let blob =
                serde_json::to_string(resp).map_err(|e| ProtocolError::Json(e.to_string()))?;
            put_str(out, &blob);
        }
        Response::Bye => out.push(RESP_BYE),
        Response::Error { kind, message } => {
            out.push(RESP_ERROR);
            out.push(kind_to_byte(*kind));
            put_str(out, message);
        }
    }
    Ok(())
}

/// Parses an embedded JSON blob and checks it decodes to the variant the
/// opcode promised.
fn blob_response(
    c: &mut Cursor<'_>,
    want: &'static str,
    matches: impl Fn(&Response) -> bool,
) -> Result<Response, ProtocolError> {
    let blob = c.string()?;
    let resp: Response =
        serde_json::from_str(&blob).map_err(|e| ProtocolError::Json(e.to_string()))?;
    if !matches(&resp) {
        return Err(ProtocolError::Json(format!(
            "blob is not a {want} response"
        )));
    }
    Ok(resp)
}

/// Decodes one response payload, which must be consumed exactly.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        RESP_OPENED => Response::Opened { session: c.u64()? },
        RESP_EVENTS => {
            let session = c.u64()?;
            let finished = c.bool("finished")?;
            let count = c.len()?;
            // Each event is ≥ 2 bytes on the wire, so a forged count can
            // at most double the buffer we already hold.
            let mut events = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                events.push(decode_event(&mut c)?);
            }
            Response::Events {
                session,
                events,
                finished,
            }
        }
        RESP_CLOSED => Response::Closed { session: c.u64()? },
        RESP_DETACHED => Response::Detached { token: c.string()? },
        RESP_REATTACHED => {
            let count = c.len()?;
            let mut sessions = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                sessions.push(c.u64()?);
            }
            Response::Reattached { sessions }
        }
        RESP_DRAINED => Response::Drained {
            completed: c.u64()?,
            force_failed: c.u64()?,
        },
        RESP_STATS => blob_response(&mut c, "stats", |r| matches!(r, Response::Stats { .. }))?,
        RESP_PUBLISHED => Response::Published {
            version: c.u64()?,
            previous: c.opt("previous presence", |c| c.u64())?,
        },
        RESP_ROLLED_BACK => Response::RolledBack {
            demoted: c.u64()?,
            live: c.u64()?,
        },
        RESP_FINETUNE_STARTED => Response::FinetuneStarted { job: c.u64()? },
        RESP_VERSIONS => blob_response(&mut c, "versions", |r| {
            matches!(r, Response::Versions { .. })
        })?,
        RESP_BYE => Response::Bye,
        RESP_ERROR => Response::Error {
            kind: kind_from_byte(c.u8()?)?,
            message: c.string()?,
        },
        op => return Err(ProtocolError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame: varint payload length, then the payload. Does not
/// flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds cap {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    let mut prefix = [0u8; 10];
    let mut n = 0;
    let mut v = payload.len() as u64;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            prefix[n] = byte;
            n += 1;
            break;
        }
        prefix[n] = byte | 0x80;
        n += 1;
    }
    w.write_all(&prefix[..n])?;
    w.write_all(payload)
}

/// Reads one frame's payload into `buf` (cleared first). Returns `false`
/// on a clean EOF at a frame boundary — the peer closed the connection
/// between frames, which is not an error.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
    // Varint length, byte by byte; EOF on the *first* byte is a clean
    // close, EOF anywhere later is a truncated frame.
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && first => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(ProtocolError::Truncated.into())
            }
            Err(e) => return Err(e.into()),
        }
        first = false;
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(ProtocolError::BadVarint.into());
        }
        len |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(ProtocolError::BadVarint.into());
        }
    }
    if len > MAX_FRAME_LEN as u64 {
        return Err(ProtocolError::Oversize { len }.into());
    }
    buf.clear();
    buf.resize(len as usize, 0);
    match r.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(ProtocolError::Truncated.into())
        }
        Err(e) => Err(e.into()),
    }
}

/// Writes the client-side preamble that switches a fresh connection to
/// binary mode.
pub fn write_preamble<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(&[MAGIC, WIRE_VERSION])
}

/// Validates the preamble's second byte (the server has already consumed
/// and matched [`MAGIC`]).
pub fn check_version(version: u8) -> Result<(), ProtocolError> {
    if version == WIRE_VERSION {
        Ok(())
    } else {
        Err(ProtocolError::BadPreamble {
            got: [MAGIC, version],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let back = decode_request(&buf).expect("decodes");
        assert_eq!(back, req);
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf).expect("encodes");
        let back = decode_response(&buf).expect("decodes");
        assert_eq!(back, resp);
    }

    #[test]
    fn fixed_layout_verbs_round_trip() {
        round_trip_request(Request::Open {
            seed: u64::MAX,
            streams: 3,
            device: "connected_car".to_string(),
            max_stream_len: Some(128),
        });
        round_trip_request(Request::Next {
            session: 0x0123_4567_89AB_CDEF,
            max: 64,
            wait_ms: 100,
        });
        round_trip_request(Request::Close { session: 1 });
        round_trip_request(Request::Detach);
        round_trip_request(Request::Reattach {
            token: "00ff00ff00ff00ff00ff00ff00ff00ff".to_string(),
        });
        round_trip_request(Request::Drain { timeout_ms: 5000 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Publish {
            path: Some("m.json".to_string()),
            version: None,
        });
        round_trip_request(Request::Rollback);
        round_trip_request(Request::Finetune {
            trace: "t.jsonl".to_string(),
            epochs: None,
            seed: Some(9),
        });
        round_trip_request(Request::Versions);
        round_trip_request(Request::Shutdown);

        round_trip_response(Response::Opened { session: 5 });
        round_trip_response(Response::Events {
            session: 5,
            events: vec![
                SessionEvent::Data(cpt_gpt::SessionEvent {
                    stream: 2,
                    event_type: EventType::Handover,
                    iat: 0.125,
                    timestamp: 1.0e-300, // subnormal-adjacent: exercises full exponent range
                    last_in_stream: false,
                }),
                SessionEvent::Failed {
                    reason: "worker panic: chaos".to_string(),
                },
            ],
            finished: true,
        });
        round_trip_response(Response::Closed { session: 5 });
        round_trip_response(Response::Detached {
            token: "deadbeef".to_string(),
        });
        round_trip_response(Response::Reattached {
            sessions: vec![3, 4, 9],
        });
        round_trip_response(Response::Drained {
            completed: 10,
            force_failed: 1,
        });
        round_trip_response(Response::Published {
            version: 3,
            previous: Some(2),
        });
        round_trip_response(Response::RolledBack { demoted: 3, live: 2 });
        round_trip_response(Response::FinetuneStarted { job: 1 });
        round_trip_response(Response::Bye);
        round_trip_response(Response::Error {
            kind: ErrorKind::Overloaded,
            message: "shed".to_string(),
        });
    }

    #[test]
    fn nan_timestamps_survive_bit_exactly() {
        let bits = 0x7ff8_dead_beef_0001_u64;
        let ev = SessionEvent::Data(cpt_gpt::SessionEvent {
            stream: 0,
            event_type: EventType::Attach,
            iat: f64::from_bits(bits),
            timestamp: 0.0,
            last_in_stream: true,
        });
        let mut buf = Vec::new();
        encode_event(&ev, &mut buf);
        let mut c = Cursor::new(&buf);
        let back = decode_event(&mut c).expect("decodes");
        match back {
            SessionEvent::Data(d) => assert_eq!(d.iat.to_bits(), bits),
            other => panic!("expected data event, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Open {
                seed: 7,
                streams: 2,
                device: "phone".to_string(),
                max_stream_len: Some(64),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let got = decode_request(&buf[..cut]);
            assert!(got.is_err(), "prefix of {cut} bytes decoded: {got:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::Stats, &mut buf);
        buf.push(0);
        assert_eq!(
            decode_request(&buf),
            Err(ProtocolError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn oversize_lengths_are_rejected_before_allocation() {
        // A reattached response claiming u64::MAX sessions.
        let mut buf = vec![RESP_REATTACHED];
        put_varint(&mut buf, u64::MAX);
        assert!(matches!(
            decode_response(&buf),
            Err(ProtocolError::Oversize { .. })
        ));
    }

    #[test]
    fn unknown_opcodes_are_typed_errors() {
        assert_eq!(decode_request(&[0x7E]), Err(ProtocolError::UnknownOpcode(0x7E)));
        assert_eq!(
            decode_response(&[0x02]),
            Err(ProtocolError::UnknownOpcode(0x02))
        );
        assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated));
    }

    #[test]
    fn error_kinds_round_trip_through_bytes() {
        for kind in [
            ErrorKind::Overloaded,
            ErrorKind::UnknownSession,
            ErrorKind::InvalidRequest,
            ErrorKind::ShuttingDown,
            ErrorKind::Draining,
            ErrorKind::UnknownToken,
            ErrorKind::Registry,
            ErrorKind::UnknownVersion,
            ErrorKind::NoPreviousVersion,
            ErrorKind::NoRegistry,
            ErrorKind::Busy,
            ErrorKind::Internal,
        ] {
            assert_eq!(kind_from_byte(kind_to_byte(kind)), Ok(kind));
        }
        assert!(matches!(
            kind_from_byte(12),
            Err(ProtocolError::BadTag { .. })
        ));
    }

    #[test]
    fn frames_round_trip_and_eof_at_boundary_is_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").expect("writes");
        write_frame(&mut wire, b"").expect("writes empty");
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).expect("reads"));
        assert_eq!(&buf[..], b"abc");
        assert!(read_frame(&mut r, &mut buf).expect("reads empty"));
        assert!(buf.is_empty());
        assert!(!read_frame(&mut r, &mut buf).expect("clean eof"), "EOF at boundary");
    }

    #[test]
    fn truncated_frames_and_oversize_prefixes_are_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").expect("writes");
        let mut r = &wire[..3]; // length byte + partial payload
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(FrameError::Protocol(ProtocolError::Truncated))
        ));

        // A length prefix claiming 1 TiB.
        let mut huge = Vec::new();
        put_varint(&mut huge, 1 << 40);
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Err(FrameError::Protocol(ProtocolError::Oversize { .. }))
        ));
    }

    #[test]
    fn preamble_version_gate() {
        assert!(check_version(WIRE_VERSION).is_ok());
        assert!(matches!(
            check_version(2),
            Err(ProtocolError::BadPreamble { got: [MAGIC, 2] })
        ));
    }
}
