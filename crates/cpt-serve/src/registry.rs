//! Crash-safe on-disk model registry.
//!
//! The registry is the durable half of model hot-swap: a directory of
//! immutable, versioned model artifacts plus one atomically rewritten
//! `manifest.json` recording every version's state in the promotion state
//! machine (`candidate → validated → live → draining → retired`, with
//! `quarantined` as the off-ramp for damaged artifacts). Every transition
//! is a manifest commit through the workspace's write-temp + fsync +
//! rename idiom, so a crash at any byte leaves either the old manifest or
//! the new one — never a mix.
//!
//! Layout under the registry root:
//!
//! ```text
//! registry/
//!   manifest.json          current state (atomic rewrite per transition)
//!   manifest.prev.json     state before the latest commit (recovery fallback)
//!   versions/v0007/model.json   immutable checksummed artifacts
//!   quarantine/v0007/...        damaged versions, moved aside on recovery
//! ```
//!
//! **Recovery** ([`Registry::open`]) trusts nothing: a corrupt manifest
//! falls back to `manifest.prev.json` (the state as of the last durable
//! commit); every referenced artifact is re-verified against its recorded
//! byte checksum; damaged or unreferenced (partially staged) version
//! directories are moved to `quarantine/` and recorded as such; leftover
//! manifest temp files from a crashed commit are removed; and if the live
//! version itself is damaged, the registry falls back to the previous
//! version — so startup always lands on the last durable, intact version.
//!
//! **The validation gate** ([`Registry::validate`]) is what `publish`
//! runs before any session can see a candidate: the artifact's byte
//! checksum, the checkpoint-load validation in [`cpt_gpt::load_model_file`]
//! (its own weight checksum, shapes, finiteness), and a deterministic
//! canary — decode a fixed number of events from fixed seeds under
//! `catch_unwind` and require every event to be well-formed and finite.
//! The canary fingerprint (a hash of the exact events) is recorded in the
//! manifest so later re-validation can detect serve-time drift.
//!
//! Chaos hooks ([`ChaosPlan::crash_manifest_commit`],
//! [`ChaosPlan::corrupt_candidate`]) make the two nastiest windows —
//! crash between temp-write and rename, corrupt candidate artifact —
//! deterministically testable.

#![deny(clippy::unwrap_used)]

use crate::chaos::ChaosPlan;
use cpt_gpt::{CheckpointError, CptGpt, StreamParams};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Manifest file name under the registry root.
pub const MANIFEST: &str = "manifest.json";
/// Previous-manifest backup, the recovery fallback for a damaged manifest.
pub const MANIFEST_PREV: &str = "manifest.prev.json";
/// Artifact file name inside each version directory.
pub const ARTIFACT: &str = "model.json";

/// Fixed seeds the deterministic canary decodes from. Constant across
/// builds so a canary fingerprint recorded at publish time stays
/// comparable for the lifetime of the registry.
pub const CANARY_SEEDS: [u64; 3] = [11, 23, 37];
/// Events decoded per canary seed.
pub const CANARY_EVENTS: usize = 24;

/// Typed registry failures. Every lifecycle transition that can go wrong
/// does so as a value — a serving process must survive a bad artifact,
/// a torn write, or a crash mid-promotion without panicking.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem failure (create, read, rename, copy).
    Io {
        /// The path being operated on.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Both `manifest.json` and its backup are unreadable or unparseable.
    CorruptManifest {
        /// The manifest path.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// A version's artifact is missing, truncated, or fails its checksum.
    CorruptArtifact {
        /// The damaged version.
        version: u64,
        /// The artifact path.
        path: PathBuf,
        /// What the verification found.
        detail: String,
    },
    /// The version id is not in the manifest.
    UnknownVersion(u64),
    /// A transition was requested from the wrong state (e.g. promoting a
    /// version that never passed validation).
    InvalidTransition {
        /// The version.
        version: u64,
        /// Its current state.
        state: VersionState,
        /// The transition that was requested.
        wanted: &'static str,
    },
    /// Checkpoint-load validation rejected the candidate's weights.
    ValidationFailed {
        /// The candidate version.
        version: u64,
        /// The checkpoint error, stringified.
        detail: String,
    },
    /// The deterministic canary rejected the candidate: a decode panic,
    /// a non-finite or malformed event.
    CanaryFailed {
        /// The candidate version.
        version: u64,
        /// What the canary observed.
        detail: String,
    },
    /// The registry holds no live version (empty or fully quarantined).
    NoLiveVersion,
    /// Rollback requested but no previous version is retained.
    NoPreviousVersion,
    /// A chaos-injected crash in the commit window between temp-write and
    /// rename. The durable manifest is the *old* one; the in-memory
    /// registry matches it.
    SimulatedCrash {
        /// Which window the crash landed in.
        point: &'static str,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io { path, source } => {
                write!(f, "registry io error at {}: {source}", path.display())
            }
            RegistryError::CorruptManifest { path, detail } => {
                write!(f, "corrupt registry manifest {}: {detail}", path.display())
            }
            RegistryError::CorruptArtifact {
                version,
                path,
                detail,
            } => write!(
                f,
                "corrupt artifact for version {version} at {}: {detail}",
                path.display()
            ),
            RegistryError::UnknownVersion(id) => write!(f, "unknown registry version {id}"),
            RegistryError::InvalidTransition {
                version,
                state,
                wanted,
            } => write!(
                f,
                "version {version} is {state:?}; cannot {wanted} from that state"
            ),
            RegistryError::ValidationFailed { version, detail } => {
                write!(f, "version {version} failed checkpoint validation: {detail}")
            }
            RegistryError::CanaryFailed { version, detail } => {
                write!(f, "version {version} failed the canary gate: {detail}")
            }
            RegistryError::NoLiveVersion => write!(f, "registry has no live version"),
            RegistryError::NoPreviousVersion => {
                write!(f, "registry retains no previous version to roll back to")
            }
            RegistryError::SimulatedCrash { point } => {
                write!(f, "chaos: simulated crash in the {point} window")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Where a version sits in the promotion state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum VersionState {
    /// Staged on disk, not yet validated; invisible to sessions.
    Candidate,
    /// Passed the validation gate (checksum + checkpoint load + canary).
    Validated,
    /// The version new sessions open on.
    Live,
    /// Demoted (superseded or rolled back); pinned sessions still drain
    /// on it.
    Draining,
    /// No sessions reference it; its in-engine copy has been freed. The
    /// artifact stays on disk as history.
    Retired,
    /// Damaged (failed checksum, load, or canary); moved aside, never
    /// served.
    Quarantined,
}

impl std::fmt::Display for VersionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VersionState::Candidate => "candidate",
            VersionState::Validated => "validated",
            VersionState::Live => "live",
            VersionState::Draining => "draining",
            VersionState::Retired => "retired",
            VersionState::Quarantined => "quarantined",
        };
        f.write_str(s)
    }
}

/// One version's manifest record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionRecord {
    /// Monotonically increasing version id (never reused, even across
    /// quarantines).
    pub id: u64,
    /// Artifact path relative to the registry root.
    pub file: String,
    /// Artifact size in bytes at stage time.
    pub bytes: u64,
    /// FNV-1a/64 over the artifact's raw bytes at stage time.
    pub file_checksum: u64,
    /// Position in the promotion state machine.
    pub state: VersionState,
    /// Canary fingerprint recorded when validation passed (0 until then).
    #[serde(default)]
    pub canary: u64,
    /// Provenance note ("imported at startup", "finetune of v3 on …").
    #[serde(default)]
    pub note: String,
}

/// The durable registry state, rewritten atomically on every transition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version.
    pub format_version: u32,
    /// The version new sessions open on.
    pub live: Option<u64>,
    /// The version `rollback` restores; retained in the engine until a
    /// later promote displaces it.
    pub previous: Option<u64>,
    /// Every version ever staged, including quarantined ones.
    pub versions: Vec<VersionRecord>,
}

impl Manifest {
    /// The record for version `id`, if it exists.
    pub fn record(&self, id: u64) -> Option<&VersionRecord> {
        self.versions.iter().find(|r| r.id == id)
    }

    fn record_mut(&mut self, id: u64) -> Option<&mut VersionRecord> {
        self.versions.iter_mut().find(|r| r.id == id)
    }
}

/// What [`Registry::open`] had to repair.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Versions quarantined during recovery, with the reason.
    pub quarantined: Vec<(u64, String)>,
    /// The manifest was unreadable and state came from
    /// `manifest.prev.json`.
    pub manifest_from_backup: bool,
    /// The recorded live version was damaged and the registry fell back
    /// to this one.
    pub live_fell_back_to: Option<u64>,
    /// Leftover commit temp files removed (a crash landed between
    /// temp-write and rename).
    pub torn_commits_cleaned: usize,
}

impl RecoveryReport {
    /// True when recovery found a registry exactly as the last commit
    /// left it.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && !self.manifest_from_backup
            && self.live_fell_back_to.is_none()
            && self.torn_commits_cleaned == 0
    }
}

/// FNV-1a/64 over raw bytes — the artifact-file checksum recorded in the
/// manifest (distinct from the weight-level checksum *inside* the
/// artifact, which `cpt_gpt` verifies on load).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(path: &Path, source: std::io::Error) -> RegistryError {
    RegistryError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Decodes [`CANARY_EVENTS`] events from each of [`CANARY_SEEDS`] on
/// `model` under `catch_unwind`, requiring every event to be well-formed
/// (stream index in range, non-negative finite interarrival, finite
/// timestamp) — and returns a fingerprint over the exact events. The
/// fingerprint is a pure function of the model weights, so an identical
/// model always produces an identical fingerprint, and a serve-time
/// re-run that disagrees with the recorded value proves the in-memory or
/// on-disk weights drifted.
pub fn canary_fingerprint(model: &CptGpt) -> Result<u64, String> {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &seed in &CANARY_SEEDS {
            let params = StreamParams::new(seed)
                .streams(2)
                .with_max_stream_len(CANARY_EVENTS);
            let mut dec = model
                .open_session(params)
                .map_err(|e| format!("canary session rejected: {e}"))?;
            let mut emitted = 0usize;
            while emitted < CANARY_EVENTS {
                let Some(ev) = dec.next_event(model) else {
                    break;
                };
                if ev.stream >= 2 {
                    return Err(format!(
                        "malformed canary event: stream index {} out of range",
                        ev.stream
                    ));
                }
                if !ev.iat.is_finite() || ev.iat < 0.0 || !ev.timestamp.is_finite() {
                    return Err(format!(
                        "non-finite canary event: iat={} timestamp={}",
                        ev.iat, ev.timestamp
                    ));
                }
                eat(seed);
                eat(ev.stream as u64);
                eat(ev.event_type.index() as u64);
                eat(ev.iat.to_bits());
                eat(ev.timestamp.to_bits());
                eat(u64::from(ev.last_in_stream));
                emitted += 1;
            }
            if emitted == 0 {
                return Err(format!("canary seed {seed} produced no events"));
            }
        }
        Ok(h)
    }));
    match run {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string payload".to_string());
            Err(format!("canary decode panicked: {msg}"))
        }
    }
}

/// The crash-safe model registry. All mutating operations follow a
/// clone-mutate-commit discipline: the in-memory manifest only changes
/// after the new state is durably renamed into place, so a failed (or
/// chaos-crashed) commit leaves memory and disk agreeing on the *old*
/// state.
pub struct Registry {
    root: PathBuf,
    manifest: Manifest,
    chaos: ChaosPlan,
    /// Manifest commits performed by this instance (chaos coordinate).
    commits: u64,
    /// Candidates staged by this instance (chaos coordinate).
    stages: u64,
}

impl Registry {
    /// Opens (creating if absent) the registry at `root`, running full
    /// crash recovery: manifest fallback, artifact verification,
    /// quarantine of damaged or unreferenced versions, live-version
    /// fallback, and torn-commit cleanup.
    pub fn open(root: impl Into<PathBuf>) -> Result<(Registry, RecoveryReport), RegistryError> {
        Registry::open_with_chaos(root, ChaosPlan::default())
    }

    /// [`Registry::open`] with a chaos plan wired into later commits and
    /// stagings (recovery itself is never chaos-injected: the recovering
    /// process is the one that *survived* the crash).
    pub fn open_with_chaos(
        root: impl Into<PathBuf>,
        chaos: ChaosPlan,
    ) -> Result<(Registry, RecoveryReport), RegistryError> {
        let root = root.into();
        for sub in ["versions", "quarantine"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        let mut report = RecoveryReport {
            torn_commits_cleaned: clean_torn_commits(&root)?,
            ..RecoveryReport::default()
        };
        let mut manifest = load_manifest(&root, &mut report)?;
        verify_and_quarantine(&root, &mut manifest, &mut report)?;
        let mut reg = Registry {
            root,
            manifest: manifest.clone(),
            chaos,
            commits: 0,
            stages: 0,
        };
        if !report.is_clean() || !reg.root.join(MANIFEST).exists() {
            // Persist the repaired view (without chaos: recovery commits
            // must always land).
            reg.write_manifest(&manifest)?;
            reg.manifest = manifest;
        }
        Ok((reg, report))
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The current manifest (read-only view).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The live version id, if any.
    pub fn live(&self) -> Option<u64> {
        self.manifest.live
    }

    /// True when no non-quarantined version exists (fresh registry).
    pub fn is_empty(&self) -> bool {
        !self
            .manifest
            .versions
            .iter()
            .any(|r| r.state != VersionState::Quarantined)
    }

    /// Absolute path of a version's artifact.
    pub fn artifact_path(&self, id: u64) -> Result<PathBuf, RegistryError> {
        let rec = self
            .manifest
            .record(id)
            .ok_or(RegistryError::UnknownVersion(id))?;
        Ok(self.root.join(&rec.file))
    }

    /// Stages `model` as a new immutable candidate version: writes the
    /// checksummed artifact atomically, records its byte checksum, and
    /// commits a `Candidate` record. Returns the new version id.
    pub fn stage(&mut self, model: &CptGpt, note: &str) -> Result<u64, RegistryError> {
        self.stages += 1;
        let stage_ordinal = self.stages;
        let id = self
            .manifest
            .versions
            .iter()
            .map(|r| r.id)
            .max()
            .unwrap_or(0)
            + 1;
        let rel = format!("versions/v{id:04}/{ARTIFACT}");
        let dir = self.root.join(format!("versions/v{id:04}"));
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let path = self.root.join(&rel);
        cpt_gpt::save_model_file(model, &path).map_err(|e| RegistryError::CorruptArtifact {
            version: id,
            path: path.clone(),
            detail: format!("stage write failed: {e}"),
        })?;
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let file_checksum = fnv1a(&bytes);
        let size = bytes.len() as u64;
        if self.chaos.corrupts_candidate(stage_ordinal) {
            // Flip one byte in place *after* the good checksum was
            // recorded — the validation gate must catch the damage.
            let mut damaged = bytes;
            let pos = (splitmix64(self.chaos.seed ^ id) as usize) % damaged.len();
            damaged[pos] ^= 0x20;
            std::fs::write(&path, &damaged).map_err(|e| io_err(&path, e))?;
        }
        let mut next = self.manifest.clone();
        next.versions.push(VersionRecord {
            id,
            file: rel,
            bytes: size,
            file_checksum,
            state: VersionState::Candidate,
            canary: 0,
            note: note.to_string(),
        });
        self.commit(next)?;
        Ok(id)
    }

    /// Runs the full validation gate on candidate `id`: artifact byte
    /// checksum, checkpoint-load validation, and the deterministic
    /// canary. On success the record moves to `Validated` (canary
    /// fingerprint recorded) and the loaded model is returned. On any
    /// failure the version is quarantined and a typed error reports why.
    pub fn validate(&mut self, id: u64) -> Result<CptGpt, RegistryError> {
        let rec = self
            .manifest
            .record(id)
            .ok_or(RegistryError::UnknownVersion(id))?
            .clone();
        match rec.state {
            VersionState::Candidate | VersionState::Validated => {}
            state => {
                return Err(RegistryError::InvalidTransition {
                    version: id,
                    state,
                    wanted: "validate",
                })
            }
        }
        let path = self.root.join(&rec.file);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                let err = RegistryError::CorruptArtifact {
                    version: id,
                    path: path.clone(),
                    detail: format!("unreadable artifact: {e}"),
                };
                self.quarantine(id, &format!("unreadable artifact: {e}"))?;
                return Err(err);
            }
        };
        let actual = fnv1a(&bytes);
        if actual != rec.file_checksum {
            let detail = format!(
                "file checksum mismatch: recorded {:#018x}, computed {actual:#018x}",
                rec.file_checksum
            );
            self.quarantine(id, &detail)?;
            return Err(RegistryError::CorruptArtifact {
                version: id,
                path,
                detail,
            });
        }
        let model = match cpt_gpt::load_model_file(&path) {
            Ok(m) => m,
            Err(e) => {
                let (err, detail) = match &e {
                    CheckpointError::Validation { detail, .. } => (
                        RegistryError::ValidationFailed {
                            version: id,
                            detail: detail.clone(),
                        },
                        format!("checkpoint validation failed: {detail}"),
                    ),
                    other => (
                        RegistryError::CorruptArtifact {
                            version: id,
                            path: path.clone(),
                            detail: other.to_string(),
                        },
                        format!("artifact load failed: {other}"),
                    ),
                };
                self.quarantine(id, &detail)?;
                return Err(err);
            }
        };
        let fingerprint = match canary_fingerprint(&model) {
            Ok(fp) => fp,
            Err(detail) => {
                self.quarantine(id, &detail)?;
                return Err(RegistryError::CanaryFailed {
                    version: id,
                    detail,
                });
            }
        };
        let mut next = self.manifest.clone();
        if let Some(r) = next.record_mut(id) {
            r.state = VersionState::Validated;
            r.canary = fingerprint;
        }
        self.commit(next)?;
        Ok(model)
    }

    /// Promotes a `Validated` version to `Live`; the old live version (if
    /// any) moves to `Draining` and becomes the rollback target. Returns
    /// the demoted version. This is the commit the chaos crash window
    /// targets.
    pub fn promote(&mut self, id: u64) -> Result<Option<u64>, RegistryError> {
        let rec = self
            .manifest
            .record(id)
            .ok_or(RegistryError::UnknownVersion(id))?;
        if self.manifest.live == Some(id) {
            return Ok(None);
        }
        if rec.state != VersionState::Validated {
            return Err(RegistryError::InvalidTransition {
                version: id,
                state: rec.state,
                wanted: "promote",
            });
        }
        let old = self.manifest.live;
        let mut next = self.manifest.clone();
        if let Some(old_id) = old {
            if let Some(r) = next.record_mut(old_id) {
                r.state = VersionState::Draining;
            }
        }
        if let Some(r) = next.record_mut(id) {
            r.state = VersionState::Live;
        }
        next.previous = old;
        next.live = Some(id);
        self.commit(next)?;
        Ok(old)
    }

    /// Re-promotes the previous version and demotes the current live one
    /// (to `Draining`: pinned sessions may still be finishing on it).
    /// Returns `(demoted, restored)`.
    pub fn rollback(&mut self) -> Result<(u64, u64), RegistryError> {
        let live = self.manifest.live.ok_or(RegistryError::NoLiveVersion)?;
        let prev = self
            .manifest
            .previous
            .ok_or(RegistryError::NoPreviousVersion)?;
        let mut next = self.manifest.clone();
        if let Some(r) = next.record_mut(live) {
            r.state = VersionState::Draining;
        }
        if let Some(r) = next.record_mut(prev) {
            r.state = VersionState::Live;
        }
        next.live = Some(prev);
        next.previous = None;
        self.commit(next)?;
        Ok((live, prev))
    }

    /// Marks a drained version `Retired` (its last pinned session ended
    /// and the engine freed its in-memory copy). Retiring a version that
    /// is live, quarantined, or unknown is a no-op: the engine's retire
    /// notifications race benignly with promotes and recoveries.
    pub fn retire(&mut self, id: u64) -> Result<(), RegistryError> {
        if self.manifest.live == Some(id) {
            return Ok(());
        }
        let Some(rec) = self.manifest.record(id) else {
            return Ok(());
        };
        if !matches!(rec.state, VersionState::Draining | VersionState::Validated) {
            return Ok(());
        }
        let mut next = self.manifest.clone();
        if let Some(r) = next.record_mut(id) {
            r.state = VersionState::Retired;
        }
        self.commit(next)
    }

    /// Moves version `id` to quarantine (directory and record), recording
    /// the reason in the note. The artifact is preserved for post-mortem,
    /// never served.
    pub fn quarantine(&mut self, id: u64, reason: &str) -> Result<(), RegistryError> {
        let mut next = self.manifest.clone();
        quarantine_in(&self.root, &mut next, id, reason)?;
        self.commit(next)
    }

    /// Loads and fully verifies the live version's artifact. This is the
    /// startup path a restarted server takes to resume serving the last
    /// durable version.
    pub fn load_live(&mut self) -> Result<(u64, CptGpt), RegistryError> {
        let live = self.manifest.live.ok_or(RegistryError::NoLiveVersion)?;
        let rec = self
            .manifest
            .record(live)
            .ok_or(RegistryError::UnknownVersion(live))?
            .clone();
        let path = self.root.join(&rec.file);
        match cpt_gpt::load_model_file(&path) {
            Ok(m) => Ok((live, m)),
            Err(e) => Err(RegistryError::CorruptArtifact {
                version: live,
                path,
                detail: e.to_string(),
            }),
        }
    }

    /// Commits `next` durably (backup current, write-temp + fsync +
    /// rename), then — and only then — adopts it in memory. The chaos
    /// crash hook aborts between temp-write and rename, leaving exactly
    /// the torn state a real crash would.
    fn commit(&mut self, next: Manifest) -> Result<(), RegistryError> {
        self.commits += 1;
        if self.chaos.crash_at_commit(self.commits) {
            // Leave the evidence a real crash leaves: the fully written
            // temp file, not yet renamed, with the old manifest intact.
            let tmp = self.root.join(format!("{MANIFEST}.tmp.crashed"));
            let json = serde_json::to_string(&next).unwrap_or_default();
            std::fs::write(&tmp, json).map_err(|e| io_err(&tmp, e))?;
            return Err(RegistryError::SimulatedCrash {
                point: "manifest temp-write/rename",
            });
        }
        self.write_manifest(&next)?;
        self.manifest = next;
        Ok(())
    }

    fn write_manifest(&self, next: &Manifest) -> Result<(), RegistryError> {
        let path = self.root.join(MANIFEST);
        if path.exists() {
            let prev = self.root.join(MANIFEST_PREV);
            std::fs::copy(&path, &prev).map_err(|e| io_err(&prev, e))?;
        }
        cpt_nn::serialize::atomic_write_json(next, &path).map_err(|e| match e {
            cpt_nn::serialize::CheckpointError::Io(source) => io_err(&path, source),
            other => RegistryError::CorruptManifest {
                path,
                detail: other.to_string(),
            },
        })
    }
}

/// One splitmix64 scramble (workspace-standard seed mixer).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Removes `manifest.json.tmp.*` leftovers from a crash between
/// temp-write and rename. Returns how many were cleaned.
fn clean_torn_commits(root: &Path) -> Result<usize, RegistryError> {
    let mut cleaned = 0usize;
    let entries = std::fs::read_dir(root).map_err(|e| io_err(root, e))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(&format!("{MANIFEST}.tmp.")) {
            std::fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), e))?;
            cleaned += 1;
        }
    }
    Ok(cleaned)
}

/// Parses the manifest, falling back to the previous-commit backup when
/// the current file is damaged. A fresh registry (no manifest at all)
/// starts empty.
fn load_manifest(root: &Path, report: &mut RecoveryReport) -> Result<Manifest, RegistryError> {
    let path = root.join(MANIFEST);
    let prev = root.join(MANIFEST_PREV);
    let parse = |p: &Path| -> Result<Manifest, String> {
        let bytes = std::fs::read(p).map_err(|e| e.to_string())?;
        serde_json::from_slice(&bytes).map_err(|e| e.to_string())
    };
    if path.exists() {
        match parse(&path) {
            Ok(m) => return Ok(m),
            Err(detail) => {
                // Preserve the damaged manifest for post-mortem, then fall
                // back to the last durable commit.
                let aside = root.join("quarantine").join("manifest.corrupt.json");
                std::fs::rename(&path, &aside).map_err(|e| io_err(&aside, e))?;
                if prev.exists() {
                    match parse(&prev) {
                        Ok(m) => {
                            report.manifest_from_backup = true;
                            return Ok(m);
                        }
                        Err(prev_detail) => {
                            return Err(RegistryError::CorruptManifest {
                                path,
                                detail: format!(
                                    "{detail}; backup also unreadable: {prev_detail}"
                                ),
                            })
                        }
                    }
                }
                return Err(RegistryError::CorruptManifest { path, detail });
            }
        }
    }
    if prev.exists() {
        if let Ok(m) = parse(&prev) {
            report.manifest_from_backup = true;
            return Ok(m);
        }
    }
    Ok(Manifest {
        format_version: 1,
        ..Manifest::default()
    })
}

/// Moves a version's directory into `quarantine/` (deduping the target
/// name) and flips its record to `Quarantined`, appending the reason to
/// its note. Purely in-memory + filesystem; the caller commits.
fn quarantine_in(
    root: &Path,
    manifest: &mut Manifest,
    id: u64,
    reason: &str,
) -> Result<(), RegistryError> {
    let Some(rec) = manifest.record_mut(id) else {
        return Err(RegistryError::UnknownVersion(id));
    };
    let src_dir = root.join(format!("versions/v{id:04}"));
    let mut dst_rel = format!("quarantine/v{id:04}");
    let mut n = 1;
    while root.join(&dst_rel).exists() {
        n += 1;
        dst_rel = format!("quarantine/v{id:04}.{n}");
    }
    if src_dir.exists() {
        let dst = root.join(&dst_rel);
        std::fs::rename(&src_dir, &dst).map_err(|e| io_err(&dst, e))?;
        rec.file = format!("{dst_rel}/{ARTIFACT}");
    }
    rec.state = VersionState::Quarantined;
    if rec.note.is_empty() {
        rec.note = format!("quarantined: {reason}");
    } else {
        rec.note = format!("{}; quarantined: {reason}", rec.note);
    }
    Ok(())
}

/// Verifies every non-quarantined record's artifact against its recorded
/// byte checksum, quarantines the damaged ones (and unreferenced version
/// directories from partial stagings), and falls the live pointer back to
/// the newest intact previously-serving version if the live artifact is
/// among the casualties.
fn verify_and_quarantine(
    root: &Path,
    manifest: &mut Manifest,
    report: &mut RecoveryReport,
) -> Result<(), RegistryError> {
    let ids: Vec<u64> = manifest
        .versions
        .iter()
        .filter(|r| r.state != VersionState::Quarantined)
        .map(|r| r.id)
        .collect();
    for id in ids {
        let Some(rec) = manifest.record(id) else {
            continue;
        };
        let path = root.join(&rec.file);
        let reason = match std::fs::read(&path) {
            Err(e) => Some(format!("artifact unreadable: {e}")),
            Ok(bytes) => {
                let actual = fnv1a(&bytes);
                if actual != rec.file_checksum {
                    Some(format!(
                        "file checksum mismatch: recorded {:#018x}, computed {actual:#018x}",
                        rec.file_checksum
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(reason) = reason {
            quarantine_in(root, manifest, id, &reason)?;
            report.quarantined.push((id, reason));
        }
    }
    // Version directories the manifest does not know about are partial
    // stagings from a crash before their manifest commit.
    let versions_dir = root.join("versions");
    let entries = std::fs::read_dir(&versions_dir).map_err(|e| io_err(&versions_dir, e))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let referenced = manifest
            .versions
            .iter()
            .any(|r| r.file.starts_with(&format!("versions/{name}/")));
        if !referenced {
            let id = name
                .strip_prefix('v')
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            let mut dst_rel = format!("quarantine/{name}");
            let mut n = 1;
            while root.join(&dst_rel).exists() {
                n += 1;
                dst_rel = format!("quarantine/{name}.{n}");
            }
            let dst = root.join(&dst_rel);
            std::fs::rename(entry.path(), &dst).map_err(|e| io_err(&dst, e))?;
            report
                .quarantined
                .push((id, "unreferenced partial staging".to_string()));
        }
    }
    // If the live version was quarantined, fall back to the last durable
    // intact version that has served before (previous first, then the
    // newest Draining/Retired record).
    if let Some(live) = manifest.live {
        let live_ok = manifest
            .record(live)
            .map(|r| r.state == VersionState::Live)
            .unwrap_or(false);
        if !live_ok {
            let fallback = manifest
                .previous
                .filter(|p| {
                    manifest
                        .record(*p)
                        .map(|r| r.state != VersionState::Quarantined)
                        .unwrap_or(false)
                })
                .or_else(|| {
                    manifest
                        .versions
                        .iter()
                        .filter(|r| {
                            matches!(
                                r.state,
                                VersionState::Draining | VersionState::Retired
                            )
                        })
                        .map(|r| r.id)
                        .max()
                });
            manifest.live = fallback;
            manifest.previous = None;
            if let Some(fb) = fallback {
                if let Some(r) = manifest.record_mut(fb) {
                    r.state = VersionState::Live;
                }
                report.live_fell_back_to = Some(fb);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_gpt::{CptGptConfig, Tokenizer, TrainConfig};
    use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
    use std::sync::{Arc, OnceLock};

    fn alternating_dataset(n: usize) -> Dataset {
        let streams = (0..n)
            .map(|i| {
                let mut t = 0.0;
                let events = (0..6 + (i % 3) * 2)
                    .map(|k| {
                        let (et, gap) = if k % 2 == 0 {
                            (EventType::ServiceRequest, 100.0)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        Dataset::new(streams)
    }

    fn trained_model() -> Arc<CptGpt> {
        static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
        Arc::clone(MODEL.get_or_init(|| {
            let data = alternating_dataset(12);
            let cfg = CptGptConfig {
                d_model: 16,
                n_blocks: 1,
                n_heads: 2,
                d_mlp: 32,
                d_head: 16,
                max_len: 16,
                ..CptGptConfig::small()
            };
            let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
            cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
                .expect("fixture training failed");
            Arc::new(model)
        }))
    }

    /// A scratch registry root, removed on drop.
    struct ScratchRoot(PathBuf);

    impl ScratchRoot {
        fn new(tag: &str) -> ScratchRoot {
            let dir = std::env::temp_dir()
                .join(format!("cpt-registry-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchRoot(dir)
        }
    }

    impl Drop for ScratchRoot {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn full_lifecycle_is_durable_across_reopen() {
        let root = ScratchRoot::new("lifecycle");
        let model = trained_model();
        {
            let (mut reg, report) = Registry::open(&root.0).expect("fresh open");
            assert!(report.is_clean());
            assert!(reg.is_empty());

            let v1 = reg.stage(&model, "first import").expect("stage v1");
            assert_eq!(v1, 1);
            let record_state = |reg: &Registry, id: u64| {
                reg.manifest().record(id).expect("record exists").state
            };
            assert_eq!(record_state(&reg, v1), VersionState::Candidate);

            let loaded = reg.validate(v1).expect("validate v1");
            assert_eq!(record_state(&reg, v1), VersionState::Validated);
            let fp = reg.manifest().record(v1).expect("record").canary;
            assert_ne!(fp, 0, "canary fingerprint recorded");
            assert_eq!(
                canary_fingerprint(&loaded).expect("canary reruns"),
                fp,
                "canary fingerprint is a pure function of the weights"
            );

            assert_eq!(reg.promote(v1).expect("promote v1"), None);
            assert_eq!(reg.live(), Some(v1));
            assert_eq!(record_state(&reg, v1), VersionState::Live);

            let v2 = reg.stage(&model, "second import").expect("stage v2");
            reg.validate(v2).expect("validate v2");
            assert_eq!(reg.promote(v2).expect("promote v2"), Some(v1));
            assert_eq!(reg.live(), Some(v2));
            assert_eq!(record_state(&reg, v1), VersionState::Draining);

            let (demoted, restored) = reg.rollback().expect("rollback");
            assert_eq!((demoted, restored), (v2, v1));
            assert_eq!(reg.live(), Some(v1));
            assert_eq!(record_state(&reg, v2), VersionState::Draining);

            reg.retire(v2).expect("retire v2");
            assert_eq!(record_state(&reg, v2), VersionState::Retired);
            // Retiring the live version is a benign no-op.
            reg.retire(v1).expect("retire live no-op");
            assert_eq!(record_state(&reg, v1), VersionState::Live);
        }
        // Every transition above was a durable manifest commit: a fresh
        // process recovers the exact same state.
        let (mut reg, report) = Registry::open(&root.0).expect("reopen");
        assert!(report.is_clean(), "clean shutdown recovers clean: {report:?}");
        assert_eq!(reg.live(), Some(1));
        let (live, _) = reg.load_live().expect("live artifact loads");
        assert_eq!(live, 1);
    }

    #[test]
    fn promote_before_validate_is_a_typed_invalid_transition() {
        let root = ScratchRoot::new("unvalidated");
        let (mut reg, _) = Registry::open(&root.0).expect("open");
        let v1 = reg.stage(&trained_model(), "raw candidate").expect("stage");
        let err = reg.promote(v1).expect_err("unvalidated promote must fail");
        assert!(
            matches!(
                err,
                RegistryError::InvalidTransition {
                    version,
                    state: VersionState::Candidate,
                    wanted: "promote",
                } if version == v1
            ),
            "expected InvalidTransition, got {err:?}"
        );
        assert!(reg.live().is_none(), "nothing went live");
    }

    #[test]
    fn corrupt_candidate_is_quarantined_with_typed_error() {
        let root = ScratchRoot::new("corrupt");
        let chaos = ChaosPlan {
            corrupt_candidate: Some(1),
            ..ChaosPlan::default()
        };
        let (mut reg, _) = Registry::open_with_chaos(&root.0, chaos).expect("open");
        let v1 = reg.stage(&trained_model(), "sabotaged").expect("stage");
        let err = reg.validate(v1).expect_err("damaged artifact must fail the gate");
        assert!(
            matches!(&err, RegistryError::CorruptArtifact { version, detail, .. }
                if *version == v1 && detail.contains("checksum mismatch")),
            "expected CorruptArtifact checksum mismatch, got {err:?}"
        );
        let rec = reg.manifest().record(v1).expect("record kept for post-mortem");
        assert_eq!(rec.state, VersionState::Quarantined);
        assert!(rec.file.starts_with("quarantine/"), "artifact moved aside: {}", rec.file);
        assert!(root.0.join(&rec.file).exists(), "quarantined artifact preserved");
        assert!(reg.is_empty(), "a quarantined-only registry counts as empty");
    }

    #[test]
    fn crash_between_temp_write_and_rename_keeps_old_manifest() {
        let root = ScratchRoot::new("crashcommit");
        let model = trained_model();
        {
            let (mut reg, _) = Registry::open(&root.0).expect("open");
            let v1 = reg.stage(&model, "survivor").expect("stage v1");
            reg.validate(v1).expect("validate v1");
            reg.promote(v1).expect("promote v1");
        }
        {
            // Crash the very next commit: the v2 staging's manifest write.
            let chaos = ChaosPlan {
                crash_manifest_commit: Some(1),
                ..ChaosPlan::default()
            };
            let (mut reg, report) =
                Registry::open_with_chaos(&root.0, chaos).expect("reopen with chaos");
            assert!(report.is_clean());
            let err = reg.stage(&model, "doomed").expect_err("commit must crash");
            assert!(
                matches!(err, RegistryError::SimulatedCrash { .. }),
                "expected SimulatedCrash, got {err:?}"
            );
            // Clone-mutate-commit: the in-memory view never adopted v2.
            assert_eq!(reg.live(), Some(1));
            assert!(reg.manifest().record(2).is_none());
        }
        // The crash left a torn temp file and an unreferenced version
        // directory; recovery cleans both and lands on the last durable
        // version.
        let (mut reg, report) = Registry::open(&root.0).expect("recover");
        assert_eq!(report.torn_commits_cleaned, 1, "torn temp file cleaned");
        assert!(
            report
                .quarantined
                .iter()
                .any(|(id, reason)| *id == 2 && reason.contains("partial staging")),
            "partial staging quarantined: {:?}",
            report.quarantined
        );
        assert_eq!(reg.live(), Some(1));
        let (live, _) = reg.load_live().expect("durable version still serves");
        assert_eq!(live, 1);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_previous_commit() {
        let root = ScratchRoot::new("manifestfallback");
        let model = trained_model();
        {
            let (mut reg, _) = Registry::open(&root.0).expect("open");
            let v1 = reg.stage(&model, "base").expect("stage");
            reg.validate(v1).expect("validate");
            reg.promote(v1).expect("promote");
        }
        // Damage the current manifest in a way no parser accepts.
        let path = root.0.join(MANIFEST);
        let mut bytes = std::fs::read(&path).expect("read manifest");
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).expect("truncate manifest");

        let (reg, report) = Registry::open(&root.0).expect("recover from backup");
        assert!(report.manifest_from_backup, "fell back to manifest.prev.json");
        // The backup predates the promote commit, so v1 may be validated
        // rather than live — but the registry must be consistent and the
        // damaged manifest preserved for post-mortem.
        assert!(reg.manifest().record(1).is_some());
        assert!(
            root.0.join("quarantine").join("manifest.corrupt.json").exists(),
            "damaged manifest kept for post-mortem"
        );
    }

    #[test]
    fn live_artifact_damage_falls_back_to_previous_version() {
        let root = ScratchRoot::new("livefallback");
        let model = trained_model();
        {
            let (mut reg, _) = Registry::open(&root.0).expect("open");
            for note in ["v1", "v2"] {
                let id = reg.stage(&model, note).expect("stage");
                reg.validate(id).expect("validate");
                reg.promote(id).expect("promote");
            }
            assert_eq!(reg.live(), Some(2));
        }
        // Flip one byte in the live artifact on disk.
        let artifact = root.0.join("versions/v0002").join(ARTIFACT);
        let mut bytes = std::fs::read(&artifact).expect("read artifact");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&artifact, &bytes).expect("damage artifact");

        let (mut reg, report) = Registry::open(&root.0).expect("recover");
        assert!(
            report.quarantined.iter().any(|(id, _)| *id == 2),
            "damaged live version quarantined: {:?}",
            report.quarantined
        );
        assert_eq!(report.live_fell_back_to, Some(1));
        assert_eq!(reg.live(), Some(1));
        let (live, _) = reg.load_live().expect("fallback version loads");
        assert_eq!(live, 1);
    }
}
