//! Typed errors for the serving layer.
//!
//! A long-running server must surface every failure as a value the caller
//! (or the wire protocol) can match on: admission-control shedding, races
//! against session close, bad configuration, and model-layer errors all
//! have distinct variants. Nothing in this crate panics on load.

#![deny(clippy::unwrap_used)]

use cpt_gpt::GenerateError;

/// Errors raised by the serving engine and its protocol front end.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control shed this `open_session`: the session cap or the
    /// global queued-events watermark is exceeded. Retry later; nothing is
    /// wrong with the request itself.
    Overloaded {
        /// Sessions currently open.
        open: usize,
        /// Configured session cap.
        cap: usize,
        /// Events currently queued across all sessions.
        queued: usize,
        /// Configured queued-events watermark.
        watermark: usize,
    },
    /// The session id is unknown (never opened, or already closed).
    UnknownSession(u64),
    /// A serve-configuration field or CLI flag failed validation.
    InvalidConfig {
        /// Name of the offending field/flag.
        field: String,
        /// Human-readable description of the constraint that failed.
        message: String,
    },
    /// The engine is shutting down and admits no new work.
    ShuttingDown,
    /// The engine is draining: existing sessions may finish and their
    /// events may still be fetched, but no new session is admitted.
    Draining,
    /// The detach capability token is unknown, already redeemed, or its
    /// TTL expired (the parked sessions were reclaimed).
    UnknownToken,
    /// The model layer rejected the session (bad params, untrained model).
    Generate(GenerateError),
    /// A socket/network operation failed (bind, connect, read, write).
    Io(std::io::Error),
    /// A model-registry operation failed (see [`crate::registry`]).
    Registry(crate::registry::RegistryError),
    /// The model version id is not installed in the engine.
    UnknownVersion(u64),
    /// Rollback requested but no previous version is retained.
    NoPreviousVersion,
    /// A lifecycle verb (`publish`/`rollback`/`finetune`) reached a server
    /// started without `--registry`.
    NoRegistry,
    /// A fine-tune job is already running; one supervised background task
    /// at a time keeps the trainer's CPU use bounded.
    FineTuneBusy,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                open,
                cap,
                queued,
                watermark,
            } => {
                if open >= cap {
                    write!(f, "overloaded: {open} sessions open (cap {cap})")
                } else {
                    write!(
                        f,
                        "overloaded: {queued} events queued (watermark {watermark})"
                    )
                }
            }
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::InvalidConfig { field, message } => {
                write!(f, "invalid serve config: {field}: {message}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Draining => {
                write!(f, "server is draining and admits no new sessions")
            }
            ServeError::UnknownToken => {
                write!(f, "unknown or expired detach token")
            }
            ServeError::Generate(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "network error: {e}"),
            ServeError::Registry(e) => write!(f, "{e}"),
            ServeError::UnknownVersion(id) => {
                write!(f, "model version {id} is not installed")
            }
            ServeError::NoPreviousVersion => {
                write!(f, "no previous model version retained to roll back to")
            }
            ServeError::NoRegistry => {
                write!(
                    f,
                    "model-lifecycle verbs need a registry; start the server with --registry"
                )
            }
            ServeError::FineTuneBusy => {
                write!(f, "a fine-tune job is already running")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Generate(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Registry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::registry::RegistryError> for ServeError {
    fn from(e: crate::registry::RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

impl From<GenerateError> for ServeError {
    fn from(e: GenerateError) -> Self {
        ServeError::Generate(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
