//! Dense row-major `f32` tensors and the kernels training needs.

use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Flat row-major storage; `data.len() == shape.iter().product()`.
    pub data: Vec<f32>,
    /// Dimension sizes, outermost first.
    pub shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from flat data and a shape. Panics on size
    /// mismatch.
    pub fn new(data: Vec<f32>, shape: Vec<usize>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor {
            data: vec![1.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: vec![],
        }
    }

    /// Standard-normal initialized tensor scaled by `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Self {
        let n = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller, two at a time.
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (std::f32::consts::TAU * u2).sin_cos();
            data.push(r * c * std);
            if data.len() < n {
                data.push(r * s * std);
            }
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions); scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The single value of a scalar/one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// Returns a reshaped copy sharing the same element order. Panics if
    /// the element count changes.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        Tensor {
            data: self.data.iter().map(|x| f(*x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise binary op with an equal-shaped tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += other` (equal shapes).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self *= c`.
    pub fn scale_assign(&mut self, c: f32) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|x| *x as f64).sum::<f64>() as f32
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum()
    }

    /// Splits the shape into (leading batch elements, last dim). A rank-1
    /// tensor is (1, n).
    pub fn rows_cols(&self) -> (usize, usize) {
        assert!(self.rank() >= 1, "rows_cols on scalar");
        let cols = *self.shape.last().expect("rank >= 1");
        (self.len() / cols.max(1), cols)
    }

    /// 2-D matrix multiply: `[m,k] x [k,n] -> [m,n]`. Rank-checked.
    /// Uses the cache-blocked, B-packed kernel; parallelized over row
    /// blocks with rayon when large enough.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Batched matrix multiply on rank-3 tensors:
    /// `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm rhs must be 3-D");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dim mismatch");
        let mut out = vec![0.0f32; b * m * n];
        self.bmm_into(other, &mut out);
        Tensor {
            data: out,
            shape: vec![b, m, n],
        }
    }

    /// [`Tensor::bmm`] writing into a caller-provided buffer of
    /// `b * m * n` elements (overwritten entirely).
    pub fn bmm_into(&self, other: &Tensor, out: &mut [f32]) {
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let n = other.shape[2];
        assert_eq!(out.len(), b * m * n, "bmm_into output size");
        let use_fma = fma_available();
        out.par_chunks_mut(m * n)
            .zip(self.data.par_chunks(m * k).zip(other.data.par_chunks(k * n)))
            .for_each(|(o, (a, bm))| {
                let mut packed = take_pack_buf();
                pack_b(bm, k, n, &mut packed);
                matmul_rows(a, &packed, o, 0, m, k, n, use_fma);
                return_pack_buf(packed);
            });
    }

    /// 2-D transpose `[m,n] -> [n,m]`, cache-blocked.
    pub fn t2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t2 needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        transpose_block(&self.data, &mut out, m, n);
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// [`Tensor::t2`] writing into a caller-provided buffer.
    pub fn t2_into(&self, out: &mut [f32]) {
        assert_eq!(self.rank(), 2, "t2 needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(out.len(), m * n, "t2_into output size");
        transpose_block(&self.data, out, m, n);
    }

    /// Transpose of the last two dims of a rank-3 tensor:
    /// `[b,m,n] -> [b,n,m]`, cache-blocked per batch slice.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "transpose_last2 needs rank 3");
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * m * n];
        self.transpose_last2_into(&mut out);
        Tensor {
            data: out,
            shape: vec![b, n, m],
        }
    }

    /// [`Tensor::transpose_last2`] writing into a caller-provided buffer.
    pub fn transpose_last2_into(&self, out: &mut [f32]) {
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        assert_eq!(out.len(), b * m * n, "transpose_last2_into output size");
        for (src, dst) in self.data.chunks(m * n).zip(out.chunks_mut(m * n)) {
            transpose_block(src, dst, m, n);
        }
    }
}

// ---------------------------------------------------------------------------
// Matmul kernels: cache-blocked, B-packed, register-tiled.
//
// B is packed into column panels of NR floats (zero-padded past n) so the
// microkernel streams contiguous, aligned-enough memory regardless of n.
// The MR x NR microkernel keeps its accumulator tile in registers and
// accumulates over k in ascending order starting from 0.0 for every output
// element — exactly the order of the serial `matmul_reference` — so the
// base (non-FMA) path is bit-identical to the reference for any blocking
// or row partition. The FMA path keeps the same order but fuses each
// multiply-add into one rounding; it is still deterministic (same machine,
// same inputs, any thread count ⇒ same bits) and agrees with the reference
// to ~2 ULP (asserted at 1e-5 relative in tests).
// ---------------------------------------------------------------------------

/// Rows of A per microkernel call.
const MR: usize = 4;
/// Columns of B per packed panel.
const NR: usize = 16;
/// Minimum m*k*n before matmul forks to rayon.
const PAR_FLOPS_THRESHOLD: usize = 64 * 64 * 64;

/// Whether the AVX2+FMA microkernel is usable on this machine (checked
/// once). Non-x86_64 builds always use the portable kernel.
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    static FMA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FMA.get_or_init(|| {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn fma_available() -> bool {
    false
}

std::thread_local! {
    static PACK_BUF: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Takes the thread-local packing buffer by value (ownership moves out, so
/// no `RefCell` borrow is held while rayon may steal work onto this
/// thread; a stolen nested matmul simply allocates a fresh buffer).
fn take_pack_buf() -> Vec<f32> {
    PACK_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()))
}

fn return_pack_buf(buf: Vec<f32>) {
    PACK_BUF.with(|b| {
        let mut slot = b.borrow_mut();
        if slot.capacity() < buf.capacity() {
            *slot = buf;
        }
    });
}

/// Packs `b` (`[k, n]` row-major) into column panels: panel `p` covers
/// columns `p*NR..(p+1)*NR` and stores `k` consecutive rows of `NR` floats,
/// zero-padded past `n`. Layout: `packed[p * k * NR + kk * NR + j]`.
fn pack_b(b: &[f32], k: usize, n: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    packed.clear();
    packed.resize(panels * k * NR, 0.0);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            dst[kk * NR..kk * NR + w].copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
        }
    }
}

/// Portable MR-row microkernel: per-element ascending-k accumulation from
/// zero, bit-identical to `matmul_reference`.
#[inline(always)]
fn micro4_base(a: &[f32], panel: &[f32], k: usize, lda: usize, i: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let bp = &panel[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let arv = a[(i + r) * lda + kk];
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] += arv * bp[j];
            }
        }
    }
    acc
}

#[inline(always)]
fn micro1_base(a: &[f32], panel: &[f32], k: usize, lda: usize, row: usize) -> [f32; NR] {
    let mut acc = [0.0f32; NR];
    for kk in 0..k {
        let bp = &panel[kk * NR..kk * NR + NR];
        let arv = a[row * lda + kk];
        for j in 0..NR {
            acc[j] += arv * bp[j];
        }
    }
    acc
}

/// AVX2+FMA microkernel: same ascending-k order, but `mul_add` fuses each
/// step into one rounding (vfmadd231ps), roughly doubling throughput.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro4_fma(a: &[f32], panel: &[f32], k: usize, lda: usize, i: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let bp = &panel[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let arv = a[(i + r) * lda + kk];
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] = arv.mul_add(bp[j], accr[j]);
            }
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro1_fma(a: &[f32], panel: &[f32], k: usize, lda: usize, row: usize) -> [f32; NR] {
    let mut acc = [0.0f32; NR];
    for kk in 0..k {
        let bp = &panel[kk * NR..kk * NR + NR];
        let arv = a[row * lda + kk];
        for j in 0..NR {
            acc[j] = arv.mul_add(bp[j], acc[j]);
        }
    }
    acc
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn micro4_fma(a: &[f32], panel: &[f32], k: usize, lda: usize, i: usize) -> [[f32; NR]; MR] {
    micro4_base(a, panel, k, lda, i)
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn micro1_fma(a: &[f32], panel: &[f32], k: usize, lda: usize, row: usize) -> [f32; NR] {
    micro1_base(a, panel, k, lda, row)
}

/// Computes output rows `i0..i0 + rows` (as the `out` slice, stride `n`)
/// from the full `a` matrix and pre-packed `b` panels. Each output row's
/// accumulation is independent of how rows are grouped into MR-tiles, so
/// any row partition yields bit-identical results.
#[allow(clippy::too_many_arguments)]
fn matmul_rows(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    use_fma: bool,
) {
    let panels = n.div_ceil(NR);
    let mut r = 0;
    while r + MR <= rows {
        for p in 0..panels {
            let panel = &packed[p * k * NR..(p + 1) * k * NR];
            let acc = if use_fma {
                unsafe { micro4_fma(a, panel, k, k, i0 + r) }
            } else {
                micro4_base(a, panel, k, k, i0 + r)
            };
            let j0 = p * NR;
            let w = NR.min(n - j0);
            for (rr, acc_row) in acc.iter().enumerate() {
                out[(r + rr) * n + j0..(r + rr) * n + j0 + w].copy_from_slice(&acc_row[..w]);
            }
        }
        r += MR;
    }
    while r < rows {
        for p in 0..panels {
            let panel = &packed[p * k * NR..(p + 1) * k * NR];
            let acc = if use_fma {
                unsafe { micro1_fma(a, panel, k, k, i0 + r) }
            } else {
                micro1_base(a, panel, k, k, i0 + r)
            };
            let j0 = p * NR;
            let w = NR.min(n - j0);
            out[r * n + j0..r * n + j0 + w].copy_from_slice(&acc[..w]);
        }
        r += 1;
    }
}

/// `out = a x b` for row-major 2-D data through the packed kernel,
/// rayon-parallel over MR-aligned row blocks for large problems.
/// Overwrites `out` entirely.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let use_fma = fma_available();
    let mut packed = take_pack_buf();
    pack_b(b, k, n, &mut packed);
    if m * k * n >= PAR_FLOPS_THRESHOLD {
        // MR-aligned row blocks sized so each rayon thread gets a few
        // tasks; the partition never changes the per-row bit pattern.
        let threads = rayon::current_num_threads().max(1);
        let target_blocks = threads * 4;
        let block_rows = (m.div_ceil(target_blocks)).next_multiple_of(MR);
        out.par_chunks_mut(block_rows * n)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let i0 = blk * block_rows;
                matmul_rows(a, &packed, chunk, i0, chunk.len() / n, k, n, use_fma);
            });
    } else {
        matmul_rows(a, &packed, out, 0, m, k, n, use_fma);
    }
    return_pack_buf(packed);
}

/// Serial reference matmul (branchless ikj): `out = a x b`. This is the
/// ground truth for the kernel tests — the packed base path must match it
/// to 0 ULP; the FMA path to 1e-5 relative.
pub fn matmul_reference(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for o in out_row.iter_mut() {
            *o = 0.0;
        }
        for kk in 0..k {
            let aik = a[i * k + kk];
            let brow = &b[kk * n..kk * n + n];
            for (o, bv) in out_row.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// int8 per-output-channel quantized weights for the batched decode path.
//
// Weights are quantized once (per output column j: scale[j] =
// max|B[:,j]| / 127, q = round(B / scale)) into the same NR-wide column
// panels the f32 kernel packs, so the quantized microkernel streams the
// identical memory layout. Accumulation stays in f32 over the dequantized
// products a[i,k] * (q as f32), and the per-column scale multiplies once at
// writeback — the error is therefore bounded by the weight rounding alone
// (|ΔB[:,j]| ≤ scale[j]/2 per entry), not by accumulator saturation. This
// path makes no bit-identity claim; it trades ≤0.4% per-channel weight
// rounding for 4× smaller weight traffic.
// ---------------------------------------------------------------------------

/// A `[k, n]` weight matrix quantized to int8 per output column and packed
/// into NR-wide panels (layout `packed[p * k * NR + kk * NR + j]`, matching
/// [`pack_b`]). Build once with [`QuantizedMatrix::quantize`], then apply
/// with [`matmul_quant_into`].
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    packed: Vec<i8>,
    scales: Vec<f32>,
    k: usize,
    n: usize,
}

impl QuantizedMatrix {
    /// Quantizes row-major `b` (`[k, n]`). Per column `j`, `scale[j] =
    /// max|b[:, j]| / 127` (an all-zero column gets scale 0 and stays
    /// exactly zero).
    pub fn quantize(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "quantize: data/shape mismatch");
        let mut scales = vec![0.0f32; n];
        for j in 0..n {
            let mut maxabs = 0.0f32;
            for kk in 0..k {
                maxabs = maxabs.max(b[kk * n + j].abs());
            }
            scales[j] = maxabs / 127.0;
        }
        let panels = n.div_ceil(NR);
        let mut packed = vec![0i8; panels * k * NR];
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
            for kk in 0..k {
                for jj in 0..w {
                    let j = j0 + jj;
                    let s = scales[j];
                    dst[kk * NR + jj] = if s > 0.0 {
                        (b[kk * n + j] / s).round().clamp(-127.0, 127.0) as i8
                    } else {
                        0
                    };
                }
            }
        }
        QuantizedMatrix {
            packed,
            scales,
            k,
            n,
        }
    }

    /// Inner dimension (rows of the original matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original matrix).
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `out = a x dequant(qb)` for row-major `a` (`[m, k]`), f32 accumulation
/// over the int8 panels with the per-column scale applied once at
/// writeback. Overwrites `out` entirely. Serial — callers batch rows
/// instead of forking (decode batches are far below the rayon threshold).
pub fn matmul_quant_into(a: &[f32], qb: &QuantizedMatrix, out: &mut [f32], m: usize) {
    let (k, n) = (qb.k, qb.n);
    assert_eq!(a.len(), m * k, "matmul_quant_into: lhs size");
    assert_eq!(out.len(), m * n, "matmul_quant_into: out size");
    let panels = n.div_ceil(NR);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for p in 0..panels {
            let panel = &qb.packed[p * k * NR..(p + 1) * k * NR];
            let mut acc = [0.0f32; NR];
            for (kk, &arv) in arow.iter().enumerate() {
                let bp = &panel[kk * NR..kk * NR + NR];
                for j in 0..NR {
                    acc[j] += arv * bp[j] as f32;
                }
            }
            let j0 = p * NR;
            let w = NR.min(n - j0);
            for jj in 0..w {
                orow[j0 + jj] = acc[jj] * qb.scales[j0 + jj];
            }
        }
    }
}

/// Cache-blocked 2-D transpose: `dst[j, i] = src[i, j]` for `[m, n]` src.
fn transpose_block(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    const TB: usize = 32;
    let mut ii = 0;
    while ii < m {
        let im = (ii + TB).min(m);
        let mut jj = 0;
        while jj < n {
            let jm = (jj + TB).min(n);
            for i in ii..im {
                for j in jj..jm {
                    dst[j * m + i] = src[i * n + j];
                }
            }
            jj = jm;
        }
        ii = im;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_basics() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.rows_cols(), (2, 3));
        assert_eq!(t.sum(), 21.0);
        let z = Tensor::zeros(&[3, 2]);
        assert_eq!(z.sum(), 0.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_rejects_bad_shape() {
        Tensor::new(vec![1.0, 2.0], vec![3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = Tensor::new(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape, vec![2, 2]);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data[i * 4 + i] = 1.0;
        }
        let b = a.matmul(&eye);
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_parallel_bit_identical_to_serial_kernel() {
        let mut rng = StdRng::seed_from_u64(2);
        // Above the parallel threshold, so matmul() takes the rayon path.
        let (m, k, n) = (80, 70, 90);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let big = a.matmul(&b);
        let mut packed = Vec::new();
        pack_b(&b.data, k, n, &mut packed);
        let mut serial = vec![0.0; m * n];
        matmul_rows(&a.data, &packed, &mut serial, 0, m, k, n, fma_available());
        for (x, y) in big.data.iter().zip(&serial) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_base_kernel_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (17, 33, 31), (64, 64, 64), (5, 128, 130)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut reference = vec![0.0; m * n];
            matmul_reference(&a.data, &b.data, &mut reference, m, k, n);
            let mut packed = Vec::new();
            pack_b(&b.data, k, n, &mut packed);
            let mut blocked = vec![0.0; m * n];
            matmul_rows(&a.data, &packed, &mut blocked, 0, m, k, n, false);
            for (x, y) in reference.iter().zip(&blocked) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn matmul_dispatched_within_tolerance_of_reference() {
        // The FMA path fuses mul+add into one rounding; the documented
        // contract is 1e-5 relative agreement with the serial reference.
        let mut rng = StdRng::seed_from_u64(8);
        for (m, k, n) in [(128, 128, 128), (33, 257, 65)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c = a.matmul(&b);
            let mut reference = vec![0.0; m * n];
            matmul_reference(&a.data, &b.data, &mut reference, m, k, n);
            for (x, y) in reference.iter().zip(&c.data) {
                let rel = (x - y).abs() / x.abs().max(1.0);
                assert!(rel < 1e-5, "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[3, 4, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 5, 2], 1.0, &mut rng);
        let c = a.bmm(&b);
        assert_eq!(c.shape, vec![3, 4, 2]);
        for bi in 0..3 {
            let a2 = Tensor::new(a.data[bi * 20..(bi + 1) * 20].to_vec(), vec![4, 5]);
            let b2 = Tensor::new(b.data[bi * 10..(bi + 1) * 10].to_vec(), vec![5, 2]);
            let c2 = a2.matmul(&b2);
            for (x, y) in c2.data.iter().zip(&c.data[bi * 8..(bi + 1) * 8]) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transposes() {
        let a = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let t = a.t2();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = Tensor::new((0..12).map(|x| x as f32).collect(), vec![2, 2, 3]);
        let bt = b.transpose_last2();
        assert_eq!(bt.shape, vec![2, 3, 2]);
        assert_eq!(
            bt.data,
            vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0, 6.0, 9.0, 7.0, 10.0, 8.0, 11.0]
        );
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::randn(&[100_000], 2.0, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data.iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn map_zip_add_scale() {
        let a = Tensor::new(vec![1.0, -2.0], vec![2]);
        let b = Tensor::new(vec![3.0, 5.0], vec![2]);
        assert_eq!(a.map(f32::abs).data, vec![1.0, 2.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).data, vec![3.0, -10.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data, vec![4.0, 3.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data, vec![2.0, 1.5]);
    }

    #[test]
    fn quantized_matmul_tracks_reference_within_scale_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(1, 16, 32), (7, 33, 17), (64, 32, 48)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 0.5, &mut rng);
            let qb = QuantizedMatrix::quantize(&b.data, k, n);
            let mut quant = vec![0.0; m * n];
            matmul_quant_into(&a.data, &qb, &mut quant, m);
            let mut reference = vec![0.0; m * n];
            matmul_reference(&a.data, &b.data, &mut reference, m, k, n);
            // Each weight entry is off by at most scale/2 ≈ maxabs/254,
            // so the output error is bounded by sum_k |a| * scale/2.
            for i in 0..m {
                let amass: f32 = a.data[i * k..(i + 1) * k].iter().map(|x| x.abs()).sum();
                for j in 0..n {
                    let bound = amass * (b.data.iter().fold(0.0f32, |acc, x| acc.max(x.abs())) / 254.0) + 1e-4;
                    let err = (quant[i * n + j] - reference[i * n + j]).abs();
                    assert!(err <= bound, "{m}x{k}x{n} [{i},{j}]: err {err} > bound {bound}");
                }
            }
        }
    }

    #[test]
    fn quantized_matmul_zero_column_stays_zero_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(12);
        let (m, k, n) = (5, 8, 20);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let mut b = Tensor::randn(&[k, n], 1.0, &mut rng);
        for kk in 0..k {
            b.data[kk * n + 3] = 0.0; // zero column => scale 0, exact zeros
        }
        let qb = QuantizedMatrix::quantize(&b.data, k, n);
        let mut out1 = vec![1.0; m * n];
        let mut out2 = vec![2.0; m * n];
        matmul_quant_into(&a.data, &qb, &mut out1, m);
        matmul_quant_into(&a.data, &qb, &mut out2, m);
        for i in 0..m {
            assert_eq!(out1[i * n + 3], 0.0);
        }
        for (x, y) in out1.iter().zip(&out2) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    proptest! {
        /// Quantized row accumulation, like the f32 kernel, is independent
        /// of how rows are grouped: batching N rows into one call is
        /// bit-identical to N single-row calls.
        #[test]
        fn quantized_matmul_row_partition_invariant(
            m in 1usize..20, k in 1usize..20, n in 1usize..40, seed in 0u64..500,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let qb = QuantizedMatrix::quantize(&b.data, k, n);
            let mut batched = vec![0.0; m * n];
            matmul_quant_into(&a.data, &qb, &mut batched, m);
            for i in 0..m {
                let mut single = vec![0.0; n];
                matmul_quant_into(&a.data[i * k..(i + 1) * k], &qb, &mut single, 1);
                for (x, y) in single.iter().zip(&batched[i * n..(i + 1) * n]) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        /// (A·B)ᵀ = Bᵀ·Aᵀ
        #[test]
        fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let lhs = a.matmul(&b).t2();
            let rhs = b.t2().matmul(&a.t2());
            for (x, y) in lhs.data.iter().zip(&rhs.data) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Blocked base kernel is bit-identical (0 ULP) to the serial
        /// reference for arbitrary shapes and row partitions.
        #[test]
        fn blocked_matmul_zero_ulp_vs_reference(
            m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let mut reference = vec![0.0; m * n];
            matmul_reference(&a.data, &b.data, &mut reference, m, k, n);
            let mut packed = Vec::new();
            pack_b(&b.data, k, n, &mut packed);
            let mut blocked = vec![0.0; m * n];
            matmul_rows(&a.data, &packed, &mut blocked, 0, m, k, n, false);
            for (x, y) in reference.iter().zip(&blocked) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            // Split at an arbitrary row: partitioning never changes bits.
            let split = seed as usize % m;
            let mut parts = vec![0.0; m * n];
            let (top, bottom) = parts.split_at_mut(split * n);
            matmul_rows(&a.data, &packed, top, 0, split, k, n, false);
            matmul_rows(&a.data, &packed, bottom, split, m - split, k, n, false);
            for (x, y) in reference.iter().zip(&parts) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// Blocked transposes are exact data movement: round-trip and
        /// element equality vs the naive definition.
        #[test]
        fn blocked_transpose_exact(
            b in 1usize..4, m in 1usize..70, n in 1usize..70, seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::randn(&[m, n], 1.0, &mut rng);
            let tt = t.t2();
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(
                        t.data[i * n + j].to_bits(),
                        tt.data[j * m + i].to_bits()
                    );
                }
            }
            prop_assert_eq!(&tt.t2().data, &t.data);
            let t3 = Tensor::randn(&[b, m, n], 1.0, &mut rng);
            prop_assert_eq!(&t3.transpose_last2().transpose_last2().data, &t3.data);
        }

        /// Matmul distributes over addition: A·(B+C) = A·B + A·C.
        #[test]
        fn matmul_distributes(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c = Tensor::randn(&[k, n], 1.0, &mut rng);
            let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
            let mut rhs = a.matmul(&b);
            rhs.add_assign(&a.matmul(&c));
            for (x, y) in lhs.data.iter().zip(&rhs.data) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
