//! Dense row-major `f32` tensors and the kernels training needs.

use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Flat row-major storage; `data.len() == shape.iter().product()`.
    pub data: Vec<f32>,
    /// Dimension sizes, outermost first.
    pub shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from flat data and a shape. Panics on size
    /// mismatch.
    pub fn new(data: Vec<f32>, shape: Vec<usize>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor {
            data: vec![1.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: vec![],
        }
    }

    /// Standard-normal initialized tensor scaled by `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Self {
        let n = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller, two at a time.
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (std::f32::consts::TAU * u2).sin_cos();
            data.push(r * c * std);
            if data.len() < n {
                data.push(r * s * std);
            }
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions); scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The single value of a scalar/one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// Returns a reshaped copy sharing the same element order. Panics if
    /// the element count changes.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        Tensor {
            data: self.data.iter().map(|x| f(*x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise binary op with an equal-shaped tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += other` (equal shapes).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self *= c`.
    pub fn scale_assign(&mut self, c: f32) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|x| *x as f64).sum::<f64>() as f32
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum()
    }

    /// Splits the shape into (leading batch elements, last dim). A rank-1
    /// tensor is (1, n).
    pub fn rows_cols(&self) -> (usize, usize) {
        assert!(self.rank() >= 1, "rows_cols on scalar");
        let cols = *self.shape.last().expect("rank >= 1");
        (self.len() / cols.max(1), cols)
    }

    /// 2-D matrix multiply: `[m,k] x [k,n] -> [m,n]`. Rank-checked.
    /// Parallelized over output rows with rayon when large enough.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Batched matrix multiply on rank-3 tensors:
    /// `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm rhs must be 3-D");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dim mismatch");
        let mut out = vec![0.0f32; b * m * n];
        out.par_chunks_mut(m * n)
            .zip(self.data.par_chunks(m * k).zip(other.data.par_chunks(k * n)))
            .for_each(|(o, (a, bm))| {
                matmul_into_serial(a, bm, o, m, k, n);
            });
        Tensor {
            data: out,
            shape: vec![b, m, n],
        }
    }

    /// 2-D transpose `[m,n] -> [n,m]`.
    pub fn t2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t2 needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Transpose of the last two dims of a rank-3 tensor:
    /// `[b,m,n] -> [b,n,m]`.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "transpose_last2 needs rank 3");
        let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * m * n];
        for bi in 0..b {
            let src = &self.data[bi * m * n..(bi + 1) * m * n];
            let dst = &mut out[bi * m * n..(bi + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![b, n, m],
        }
    }
}

/// `out += a x b` for row-major 2-D data, rayon-parallel over rows for
/// large problems.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // Parallelize only when the work is worth the fork-join overhead.
    if m * k * n >= 64 * 64 * 64 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| matmul_row(a, b, row, i, k, n));
    } else {
        matmul_into_serial(a, b, out, m, k, n);
    }
}

fn matmul_into_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        matmul_row(a, b, &mut out[i * n..(i + 1) * n], i, k, n);
    }
}

#[inline]
fn matmul_row(a: &[f32], b: &[f32], out_row: &mut [f32], i: usize, k: usize, n: usize) {
    // ikj order: stream through b rows; autovectorizes well.
    for kk in 0..k {
        let aik = a[i * k + kk];
        if aik == 0.0 {
            continue;
        }
        let brow = &b[kk * n..kk * n + n];
        for (o, bv) in out_row.iter_mut().zip(brow) {
            *o += aik * bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_basics() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.rows_cols(), (2, 3));
        assert_eq!(t.sum(), 21.0);
        let z = Tensor::zeros(&[3, 2]);
        assert_eq!(z.sum(), 0.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn construction_rejects_bad_shape() {
        Tensor::new(vec![1.0, 2.0], vec![3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = Tensor::new(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape, vec![2, 2]);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data[i * 4 + i] = 1.0;
        }
        let b = a.matmul(&eye);
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(2);
        // Above the parallel threshold.
        let a = Tensor::randn(&[80, 70], 1.0, &mut rng);
        let b = Tensor::randn(&[70, 90], 1.0, &mut rng);
        let big = a.matmul(&b);
        let mut serial = vec![0.0; 80 * 90];
        matmul_into_serial(&a.data, &b.data, &mut serial, 80, 70, 90);
        for (x, y) in big.data.iter().zip(&serial) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[3, 4, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 5, 2], 1.0, &mut rng);
        let c = a.bmm(&b);
        assert_eq!(c.shape, vec![3, 4, 2]);
        for bi in 0..3 {
            let a2 = Tensor::new(a.data[bi * 20..(bi + 1) * 20].to_vec(), vec![4, 5]);
            let b2 = Tensor::new(b.data[bi * 10..(bi + 1) * 10].to_vec(), vec![5, 2]);
            let c2 = a2.matmul(&b2);
            for (x, y) in c2.data.iter().zip(&c.data[bi * 8..(bi + 1) * 8]) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transposes() {
        let a = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let t = a.t2();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let b = Tensor::new((0..12).map(|x| x as f32).collect(), vec![2, 2, 3]);
        let bt = b.transpose_last2();
        assert_eq!(bt.shape, vec![2, 3, 2]);
        assert_eq!(
            bt.data,
            vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0, 6.0, 9.0, 7.0, 10.0, 8.0, 11.0]
        );
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::randn(&[100_000], 2.0, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data.iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn map_zip_add_scale() {
        let a = Tensor::new(vec![1.0, -2.0], vec![2]);
        let b = Tensor::new(vec![3.0, 5.0], vec![2]);
        assert_eq!(a.map(f32::abs).data, vec![1.0, 2.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).data, vec![3.0, -10.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data, vec![4.0, 3.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data, vec![2.0, 1.5]);
    }

    proptest! {
        /// (A·B)ᵀ = Bᵀ·Aᵀ
        #[test]
        fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let lhs = a.matmul(&b).t2();
            let rhs = b.t2().matmul(&a.t2());
            for (x, y) in lhs.data.iter().zip(&rhs.data) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Matmul distributes over addition: A·(B+C) = A·B + A·C.
        #[test]
        fn matmul_distributes(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c = Tensor::randn(&[k, n], 1.0, &mut rng);
            let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
            let mut rhs = a.matmul(&b);
            rhs.add_assign(&a.matmul(&c));
            for (x, y) in lhs.data.iter().zip(&rhs.data) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
