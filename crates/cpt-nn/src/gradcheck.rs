//! Finite-difference gradient verification.
//!
//! Every backward formula in this crate is validated against a central
//! finite difference. The checker rebuilds the graph from scratch for each
//! perturbation, so it exercises exactly the code path training uses.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Result details of a failed check.
#[derive(Debug, Clone)]
pub struct GradMismatch {
    /// Which input tensor.
    pub input_index: usize,
    /// Which element within that tensor.
    pub element: usize,
    /// Analytic gradient from [`Graph::backward`].
    pub analytic: f64,
    /// Central finite-difference estimate.
    pub numeric: f64,
}

impl std::fmt::Display for GradMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "input {} element {}: analytic {} vs numeric {}",
            self.input_index, self.element, self.analytic, self.numeric
        )
    }
}

/// Graph builder passed to [`check_gradients`]: receives the current input
/// tensors, constructs a fresh graph, and returns the leaf [`Var`]s (one
/// per input, same order) plus the scalar loss.
pub type BuildFn<'a> = dyn Fn(&mut Graph, &[Tensor]) -> (Vec<Var>, Var) + 'a;

/// Checks analytic gradients of `build` against central finite differences.
///
/// `build` receives the current input tensors, constructs a fresh graph and
/// returns the leaf [`Var`]s (one per input, same order) plus the scalar
/// loss. Gradients of every element of every input are verified with step
/// `eps` and mixed absolute/relative tolerance `tol`.
pub fn check_gradients(
    build: &BuildFn<'_>,
    inputs: &[Tensor],
    eps: f64,
    tol: f64,
) -> Result<(), GradMismatch> {
    // Analytic gradients.
    let mut g = Graph::new();
    let (vars, loss) = build(&mut g, inputs);
    assert_eq!(vars.len(), inputs.len(), "build must return one Var per input");
    g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(v, t)| {
            g.grad(*v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(&t.shape))
        })
        .collect();

    let eval = |inputs: &[Tensor]| -> f64 {
        let mut g = Graph::new();
        let (_, loss) = build(&mut g, inputs);
        g.value(loss).item() as f64
    };

    for (ii, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[ii].data[e] += eps as f32;
            let mut minus = inputs.to_vec();
            minus[ii].data[e] -= eps as f32;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[ii].data[e] as f64;
            let denom = 1.0f64.max(a.abs()).max(numeric.abs());
            if (a - numeric).abs() / denom > tol {
                return Err(GradMismatch {
                    input_index: ii,
                    element: e,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 5e-3;
    const TOL: f64 = 2e-2;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gradcheck_matmul_add_mul() {
        let mut r = rng(1);
        let inputs = vec![
            Tensor::randn(&[3, 4], 1.0, &mut r),
            Tensor::randn(&[4, 2], 1.0, &mut r),
            Tensor::randn(&[2], 1.0, &mut r),
        ];
        check_gradients(
            &|g, ins| {
                let a = g.input(ins[0].clone());
                let b = g.input(ins[1].clone());
                let c = g.input(ins[2].clone());
                let m = g.matmul(a, b);
                let s = g.add(m, c); // bias broadcast
                let p = g.mul(s, s);
                let loss = g.mean_all(p);
                (vec![a, b, c], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_bmm_transpose() {
        let mut r = rng(2);
        let inputs = vec![
            Tensor::randn(&[2, 3, 4], 0.5, &mut r),
            Tensor::randn(&[2, 3, 4], 0.5, &mut r),
        ];
        check_gradients(
            &|g, ins| {
                let a = g.input(ins[0].clone());
                let b = g.input(ins[1].clone());
                let bt = g.transpose_last2(b);
                let m = g.bmm(a, bt); // [2,3,3]
                let loss = g.mean_all(m);
                (vec![a, b], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_nonlinearities() {
        let mut r = rng(3);
        let inputs = vec![Tensor::randn(&[2, 5], 1.0, &mut r)];
        for f in [
            Graph::relu as fn(&mut Graph, Var) -> Var,
            Graph::gelu,
            Graph::tanh,
            Graph::sigmoid,
        ] {
            check_gradients(
                &|g, ins| {
                    let a = g.input(ins[0].clone());
                    let y = f(g, a);
                    let sq = g.mul(y, y);
                    let loss = g.mean_all(sq);
                    (vec![a], loss)
                },
                &inputs,
                EPS,
                5e-2, // relu kink tolerance
            )
            .unwrap();
        }
    }

    #[test]
    fn gradcheck_softmax() {
        let mut r = rng(4);
        let inputs = vec![Tensor::randn(&[3, 4], 1.0, &mut r)];
        check_gradients(
            &|g, ins| {
                let a = g.input(ins[0].clone());
                let y = g.softmax_lastdim(a);
                let sq = g.mul(y, y);
                let loss = g.mean_all(sq);
                (vec![a], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_layernorm() {
        let mut r = rng(5);
        let inputs = vec![
            Tensor::randn(&[3, 6], 1.0, &mut r),
            Tensor::randn(&[6], 0.3, &mut r).map(|x| 1.0 + x),
            Tensor::randn(&[6], 0.3, &mut r),
        ];
        check_gradients(
            &|g, ins| {
                let x = g.input(ins[0].clone());
                let gamma = g.input(ins[1].clone());
                let beta = g.input(ins[2].clone());
                let y = g.layernorm(x, gamma, beta, 1e-5);
                let sq = g.mul(y, y);
                let loss = g.mean_all(sq);
                (vec![x, gamma, beta], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_cross_entropy() {
        let mut r = rng(6);
        let inputs = vec![Tensor::randn(&[4, 3], 1.0, &mut r)];
        check_gradients(
            &|g, ins| {
                let a = g.input(ins[0].clone());
                let loss = g.cross_entropy_logits(a, &[0, 2, 1, 0], &[1.0, 1.0, 0.0, 1.0]);
                (vec![a], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_gaussian_nll() {
        let mut r = rng(7);
        let inputs = vec![
            Tensor::randn(&[5], 1.0, &mut r),
            Tensor::randn(&[5], 0.3, &mut r),
        ];
        check_gradients(
            &|g, ins| {
                let m = g.input(ins[0].clone());
                let s = g.input(ins[1].clone());
                let loss =
                    g.gaussian_nll(m, s, &[0.3, -1.0, 2.0, 0.0, 0.7], &[1.0, 1.0, 1.0, 0.0, 1.0]);
                (vec![m, s], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_bce_and_mse() {
        let mut r = rng(8);
        let inputs = vec![Tensor::randn(&[6], 1.0, &mut r)];
        check_gradients(
            &|g, ins| {
                let z = g.input(ins[0].clone());
                let l1 = g.bce_with_logits(z, &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0], &[1.0; 6]);
                let l2 = g.mse_masked(z, &[0.5; 6], &[1.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
                let loss = g.weighted_sum(&[(l1, 1.0), (l2, 0.5)]);
                (vec![z], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_concat_cols() {
        let mut r = rng(12);
        let inputs = vec![
            Tensor::randn(&[3, 2], 1.0, &mut r),
            Tensor::randn(&[3, 4], 1.0, &mut r),
        ];
        check_gradients(
            &|g, ins| {
                let a = g.input(ins[0].clone());
                let b = g.input(ins[1].clone());
                let cat = g.concat_cols(&[a, b]);
                let sq = g.mul(cat, cat);
                let loss = g.mean_all(sq);
                (vec![a, b], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_slice_ops_and_heads() {
        let mut r = rng(9);
        let inputs = vec![Tensor::randn(&[2, 4, 6], 0.7, &mut r)];
        check_gradients(
            &|g, ins| {
                let x = g.input(ins[0].clone());
                let h = g.split_heads(x, 2); // [4, 4, 3]
                let m = g.merge_heads(h, 2); // [2, 4, 6]
                let flat = g.reshape(m, &[8, 6]);
                let cols = g.slice_cols(flat, 1, 3);
                let rows = g.slice_rows(cols, 2, 4);
                let sq = g.mul(rows, rows);
                let loss = g.mean_all(sq);
                (vec![x], loss)
            },
            &inputs,
            EPS,
            TOL,
        )
        .unwrap();
    }
}
