//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Graph`] is rebuilt per forward pass. Every op appends a node holding
//! the op's output value, its parent node ids and a backward closure that
//! maps the node's output gradient to its parents' gradients. Calling
//! [`Graph::backward`] seeds the loss node with gradient 1 and walks the
//! tape in reverse, accumulating.
//!
//! Losses are fused ops (softmax+CE, Gaussian NLL, …) so intermediate
//! probabilities never need their own gradients and numerical stability is
//! handled in one place.

use crate::scratch::ScratchArena;
use crate::tensor::{matmul_into, Tensor};
use std::rc::Rc;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Rc<Tensor>,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    grad: Option<Tensor>,
}

/// Allocation context threaded through ops and captured by backward
/// closures: draws buffers from the graph's scratch arena when one is
/// attached, falls back to plain heap allocation otherwise.
#[derive(Clone, Default)]
struct AllocCtx(Option<ScratchArena>);

impl AllocCtx {
    fn take(&self, len: usize) -> Vec<f32> {
        match &self.0 {
            Some(a) => a.take_zeroed(len),
            None => vec![0.0; len],
        }
    }

    fn give(&self, buf: Vec<f32>) {
        if let Some(a) = &self.0 {
            a.give(buf);
        }
    }

    fn zeros(&self, shape: &[usize]) -> Tensor {
        Tensor::new(self.take(shape.iter().product()), shape.to_vec())
    }

    fn clone_tensor(&self, t: &Tensor) -> Tensor {
        let mut buf = self.take(t.len());
        buf.copy_from_slice(&t.data);
        Tensor::new(buf, t.shape.clone())
    }

    fn map(&self, t: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
        let mut buf = self.take(t.len());
        for (o, x) in buf.iter_mut().zip(&t.data) {
            *o = f(*x);
        }
        Tensor::new(buf, t.shape.clone())
    }

    fn zip(&self, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(a.shape, b.shape, "zip shape mismatch");
        let mut buf = self.take(a.len());
        for ((o, x), y) in buf.iter_mut().zip(&a.data).zip(&b.data) {
            *o = f(*x, *y);
        }
        Tensor::new(buf, a.shape.clone())
    }
}

/// An autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    scratch: AllocCtx,
}

impl Drop for Graph {
    fn drop(&mut self) {
        let Some(arena) = self.scratch.0.take() else { return };
        // Backward closures hold `Rc` clones of parent values; drop them
        // first so node values become uniquely owned and poolable.
        for node in &mut self.nodes {
            node.backward = None;
        }
        for node in self.nodes.drain(..) {
            if let Ok(t) = Rc::try_unwrap(node.value) {
                arena.give(t.data);
            }
            if let Some(g) = node.grad {
                arena.give(g.data);
            }
        }
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph whose node values, backward intermediates
    /// and gradients are drawn from (and returned to) `arena`.
    pub fn with_scratch(arena: ScratchArena) -> Self {
        Graph {
            nodes: Vec::new(),
            scratch: AllocCtx(Some(arena)),
        }
    }

    fn ctx(&self) -> AllocCtx {
        self.scratch.clone()
    }

    fn alloc(&self, len: usize) -> Vec<f32> {
        self.scratch.take(len)
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, parents: Vec<usize>, backward: Option<BackwardFn>) -> Var {
        self.push_rc(Rc::new(value), parents, backward)
    }

    fn push_rc(&mut self, value: Rc<Tensor>, parents: Vec<usize>, backward: Option<BackwardFn>) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            backward,
            grad: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Adds a leaf node. Leaves receive gradients like any node; callers
    /// read back the ones they care about (parameters) via [`Graph::grad`].
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node (after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    fn rc_value(&self, v: Var) -> Rc<Tensor> {
        Rc::clone(&self.nodes[v.0].value)
    }

    // ---------------------------------------------------------------
    // Elementwise / broadcast arithmetic
    // ---------------------------------------------------------------

    /// `a + b`. `b`'s shape must equal `a`'s or be a suffix of it, in which
    /// case `b` is broadcast over the leading dimensions (bias add).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let ctx = self.ctx();
        let out = broadcast_add(&av, &bv, &ctx);
        let b_shape = bv.shape.clone();
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                let da = ctx.clone_tensor(g);
                let db = reduce_to_shape(g, &b_shape, &ctx);
                vec![da, db]
            })),
        )
    }

    /// `a - b` (equal shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let ctx = self.ctx();
        let out = ctx.zip(&av, &bv, |x, y| x - y);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                vec![ctx.clone_tensor(g), ctx.map(g, |x| -x)]
            })),
        )
    }

    /// Elementwise `a * b` (equal shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let ctx = self.ctx();
        let out = ctx.zip(&av, &bv, |x, y| x * y);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                vec![
                    ctx.zip(g, &bv, |go, y| go * y),
                    ctx.zip(g, &av, |go, x| go * x),
                ]
            })),
        )
    }

    /// `a * c` for a scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let av = self.rc_value(a);
        let ctx = self.ctx();
        let out = ctx.map(&av, |x| x * c);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| vec![ctx.map(g, |x| x * c)])),
        )
    }

    // ---------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------

    /// 2-D matmul `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        assert_eq!(av.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(bv.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = (av.shape[0], av.shape[1]);
        let n = bv.shape[1];
        assert_eq!(k, bv.shape[0], "matmul inner dims");
        let ctx = self.ctx();
        let mut out = self.alloc(m * n);
        matmul_into(&av.data, &bv.data, &mut out, m, k, n);
        self.push(
            Tensor::new(out, vec![m, n]),
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                // dA = G·Bᵀ ; dB = Aᵀ·G  (transposes in pooled scratch)
                let mut bt = ctx.take(k * n);
                bv.t2_into(&mut bt);
                let mut da = ctx.take(m * k);
                matmul_into(&g.data, &bt, &mut da, m, n, k);
                ctx.give(bt);
                let mut at = ctx.take(m * k);
                av.t2_into(&mut at);
                let mut db = ctx.take(k * n);
                matmul_into(&at, &g.data, &mut db, k, m, n);
                ctx.give(at);
                vec![Tensor::new(da, vec![m, k]), Tensor::new(db, vec![k, n])]
            })),
        )
    }

    /// Batched 3-D matmul `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        assert_eq!(av.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(bv.rank(), 3, "bmm rhs must be 3-D");
        let (bs, m, k) = (av.shape[0], av.shape[1], av.shape[2]);
        let n = bv.shape[2];
        let ctx = self.ctx();
        let mut out = self.alloc(bs * m * n);
        av.bmm_into(&bv, &mut out);
        self.push(
            Tensor::new(out, vec![bs, m, n]),
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                let mut bt = Tensor::new(ctx.take(bs * k * n), vec![bs, n, k]);
                bv.transpose_last2_into(&mut bt.data);
                let mut da = ctx.take(bs * m * k);
                g.bmm_into(&bt, &mut da);
                ctx.give(bt.data);
                let mut at = Tensor::new(ctx.take(bs * m * k), vec![bs, k, m]);
                av.transpose_last2_into(&mut at.data);
                let mut db = ctx.take(bs * k * n);
                at.bmm_into(g, &mut db);
                ctx.give(at.data);
                vec![
                    Tensor::new(da, vec![bs, m, k]),
                    Tensor::new(db, vec![bs, k, n]),
                ]
            })),
        )
    }

    /// Transpose of the last two dims of a rank-3 tensor.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 3, "transpose_last2 needs rank 3");
        let (b, m, n) = (av.shape[0], av.shape[1], av.shape[2]);
        let ctx = self.ctx();
        let mut out = self.alloc(b * m * n);
        av.transpose_last2_into(&mut out);
        self.push(
            Tensor::new(out, vec![b, n, m]),
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut dg = ctx.take(b * m * n);
                g.transpose_last2_into(&mut dg);
                vec![Tensor::new(dg, vec![b, m, n])]
            })),
        )
    }

    /// Reshape (element order preserved).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let av = self.rc_value(a);
        let in_shape = av.shape.clone();
        assert_eq!(
            av.len(),
            shape.iter().product::<usize>(),
            "reshape {:?} -> {:?} changes element count",
            in_shape,
            shape
        );
        let ctx = self.ctx();
        let mut out = ctx.clone_tensor(&av);
        out.shape = shape.to_vec();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut dg = ctx.clone_tensor(g);
                dg.shape = in_shape.clone();
                vec![dg]
            })),
        )
    }

    /// Rows `start..start+len` of a 2-D tensor (used to take the first `T`
    /// positional-embedding rows). Backward scatters into a zero tensor.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 2, "slice_rows needs rank 2");
        let (rows, cols) = (av.shape[0], av.shape[1]);
        assert!(start + len <= rows, "slice_rows out of range");
        let ctx = self.ctx();
        let mut out = Tensor::new(self.alloc(len * cols), vec![len, cols]);
        out.data
            .copy_from_slice(&av.data[start * cols..(start + len) * cols]);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut da = ctx.zeros(&[rows, cols]);
                da.data[start * cols..(start + len) * cols].copy_from_slice(&g.data);
                vec![da]
            })),
        )
    }

    /// Concatenates 2-D tensors with equal row counts along the column
    /// axis (used to reassemble multi-field GAN samples). Backward splits
    /// the gradient back per input.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let values: Vec<Rc<Tensor>> = parts.iter().map(|v| self.rc_value(*v)).collect();
        let rows = values[0].shape[0];
        assert!(
            values.iter().all(|t| t.rank() == 2 && t.shape[0] == rows),
            "concat_cols needs rank-2 inputs with equal rows"
        );
        let widths: Vec<usize> = values.iter().map(|t| t.shape[1]).collect();
        let total: usize = widths.iter().sum();
        let mut out = Tensor::zeros(&[rows, total]);
        for r in 0..rows {
            let mut off = 0;
            for (t, w) in values.iter().zip(&widths) {
                out.data[r * total + off..r * total + off + w]
                    .copy_from_slice(&t.data[r * w..(r + 1) * w]);
                off += w;
            }
        }
        let widths_bw = widths.clone();
        self.push(
            out,
            parts.iter().map(|v| v.0).collect(),
            Some(Box::new(move |g: &Tensor| {
                let mut grads: Vec<Tensor> = widths_bw
                    .iter()
                    .map(|w| Tensor::zeros(&[rows, *w]))
                    .collect();
                for r in 0..rows {
                    let mut off = 0;
                    for (gi, w) in grads.iter_mut().zip(&widths_bw) {
                        gi.data[r * w..(r + 1) * w]
                            .copy_from_slice(&g.data[r * total + off..r * total + off + w]);
                        off += w;
                    }
                }
                grads
            })),
        )
    }

    /// Columns `start..start+len` of a 2-D tensor (used to split LSTM gate
    /// pre-activations). Backward scatters into a zero tensor.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 2, "slice_cols needs rank 2");
        let (rows, cols) = (av.shape[0], av.shape[1]);
        assert!(start + len <= cols, "slice_cols out of range");
        let ctx = self.ctx();
        let mut out = Tensor::new(self.alloc(rows * len), vec![rows, len]);
        for r in 0..rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&av.data[r * cols + start..r * cols + start + len]);
        }
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut da = ctx.zeros(&[rows, cols]);
                for r in 0..rows {
                    da.data[r * cols + start..r * cols + start + len]
                        .copy_from_slice(&g.data[r * len..(r + 1) * len]);
                }
                vec![da]
            })),
        )
    }

    /// Splits a `[B,T,D]` activation into `[B*H, T, D/H]` head-major
    /// layout for attention. Pure permutation; exact inverse of
    /// [`Graph::merge_heads`].
    pub fn split_heads(&mut self, a: Var, n_heads: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 3, "split_heads needs [B,T,D]");
        let (b, t, d) = (av.shape[0], av.shape[1], av.shape[2]);
        assert_eq!(d % n_heads, 0, "d_model not divisible by heads");
        let hd = d / n_heads;
        let ctx = self.ctx();
        let out = split_heads_data(&av, b, t, n_heads, hd, &ctx);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![merge_heads_data(g, b, t, n_heads, hd, &ctx)]
            })),
        )
    }

    /// Merges `[B*H, T, hd]` back to `[B,T,H*hd]`.
    pub fn merge_heads(&mut self, a: Var, n_heads: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 3, "merge_heads needs [B*H,T,hd]");
        let bh = av.shape[0];
        assert_eq!(bh % n_heads, 0, "batch not divisible by heads");
        let (b, t, hd) = (bh / n_heads, av.shape[1], av.shape[2]);
        let ctx = self.ctx();
        let out = merge_heads_data(&av, b, t, n_heads, hd, &ctx);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![split_heads_data(g, b, t, n_heads, hd, &ctx)]
            })),
        )
    }

    // ---------------------------------------------------------------
    // Nonlinearities
    // ---------------------------------------------------------------

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let ctx = self.ctx();
        let out = ctx.map(&av, |x| x.max(0.0));
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![ctx.zip(g, &av, |go, x| if x > 0.0 { go } else { 0.0 })]
            })),
        )
    }

    /// GELU (tanh approximation), the transformer MLP activation.
    pub fn gelu(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let ctx = self.ctx();
        let out = ctx.map(&av, gelu_f);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![ctx.zip(g, &av, |go, x| go * gelu_df(x))]
            })),
        )
    }

    /// tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let ctx = self.ctx();
        let out = Rc::new(ctx.map(&av, f32::tanh));
        let outv = Rc::clone(&out);
        self.push_rc(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![ctx.zip(g, &outv, |go, y| go * (1.0 - y * y))]
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let ctx = self.ctx();
        let out = Rc::new(ctx.map(&av, sigmoid_f));
        let outv = Rc::clone(&out);
        self.push_rc(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![ctx.zip(g, &outv, |go, y| go * y * (1.0 - y))]
            })),
        )
    }

    /// Softmax over the last dimension (numerically stabilized).
    pub fn softmax_lastdim(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let ctx = self.ctx();
        let mut out = Tensor::new(self.alloc(av.len()), av.shape.clone());
        softmax_lastdim_into(&av, &mut out.data);
        let out = Rc::new(out);
        let outv = Rc::clone(&out);
        self.push_rc(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                // dx_i = y_i (g_i - Σ_j g_j y_j) per row.
                let (rows, cols) = outv.rows_cols();
                let mut dx = ctx.zeros(&outv.shape);
                for r in 0..rows {
                    let y = &outv.data[r * cols..(r + 1) * cols];
                    let go = &g.data[r * cols..(r + 1) * cols];
                    let dot: f32 = y.iter().zip(go).map(|(yi, gi)| yi * gi).sum();
                    for c in 0..cols {
                        dx.data[r * cols + c] = y[c] * (go[c] - dot);
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Fused scaled-dot-product attention over head-major tensors:
    /// `softmax(scale · Q·Kᵀ + causal mask) · V` for `Q`, `K`, `V` of shape
    /// `[B·H, T, hd]`, as one tape node with a single backward closure.
    ///
    /// Replaces the five-node chain transpose→bmm→scale→mask-add→softmax
    /// (plus a context bmm): the mask tensor is never materialized (causal
    /// masking skips `j > i`, numerically identical to the `-1e9` additive
    /// mask since those entries underflow to exactly 0 after softmax), and
    /// only the attention probabilities are cached for backward.
    pub fn attention(&mut self, q: Var, k: Var, v: Var, scale: f32, causal: bool) -> Var {
        let qv = self.rc_value(q);
        let kv = self.rc_value(k);
        let vv = self.rc_value(v);
        assert_eq!(qv.rank(), 3, "attention needs [BH,T,hd]");
        assert_eq!(kv.shape, qv.shape, "attention K shape");
        assert_eq!(vv.shape, qv.shape, "attention V shape");
        let (bh, t, hd) = (qv.shape[0], qv.shape[1], qv.shape[2]);
        let ctx = self.ctx();

        // Scores in place: attn = Q·Kᵀ, then scale + masked softmax rows.
        let mut kt = Tensor::new(self.alloc(bh * t * hd), vec![bh, hd, t]);
        kv.transpose_last2_into(&mut kt.data);
        let mut attn = Tensor::new(self.alloc(bh * t * t), vec![bh, t, t]);
        qv.bmm_into(&kt, &mut attn.data);
        ctx.give(kt.data);
        for s in 0..bh {
            for i in 0..t {
                let row = &mut attn.data[(s * t + i) * t..(s * t + i + 1) * t];
                let lim = if causal { i + 1 } else { t };
                let mut max = f32::NEG_INFINITY;
                for x in &mut row[..lim] {
                    *x *= scale;
                    max = max.max(*x);
                }
                let mut sum = 0.0f32;
                for x in &mut row[..lim] {
                    *x = (*x - max).exp();
                    sum += *x;
                }
                let inv = 1.0 / sum;
                for x in &mut row[..lim] {
                    *x *= inv;
                }
                for x in &mut row[lim..] {
                    *x = 0.0;
                }
            }
        }
        let mut out = self.alloc(bh * t * hd);
        attn.bmm_into(&vv, &mut out);
        // Park the probabilities on the tape as a hidden constant node so
        // the buffer is pooled when the graph drops (backward is skipped
        // for nodes without gradient).
        let attn_node = self.push(attn, vec![], None);
        let attn_rc = self.rc_value(attn_node);
        self.push(
            Tensor::new(out, vec![bh, t, hd]),
            vec![q.0, k.0, v.0],
            Some(Box::new(move |g: &Tensor| {
                // dV = Aᵀ·G
                let mut at = Tensor::new(ctx.take(bh * t * t), vec![bh, t, t]);
                attn_rc.transpose_last2_into(&mut at.data);
                let mut dv = ctx.take(bh * t * hd);
                at.bmm_into(g, &mut dv);
                ctx.give(at.data);
                // dS = softmax-backward(G·Vᵀ) against A, in place.
                let mut vt = Tensor::new(ctx.take(bh * t * hd), vec![bh, hd, t]);
                vv.transpose_last2_into(&mut vt.data);
                let mut ds = Tensor::new(ctx.take(bh * t * t), vec![bh, t, t]);
                g.bmm_into(&vt, &mut ds.data);
                ctx.give(vt.data);
                for r in 0..bh * t {
                    let a_row = &attn_rc.data[r * t..(r + 1) * t];
                    let ds_row = &mut ds.data[r * t..(r + 1) * t];
                    let dot: f32 = a_row.iter().zip(ds_row.iter()).map(|(y, d)| y * d).sum();
                    for (d, y) in ds_row.iter_mut().zip(a_row) {
                        *d = y * (*d - dot);
                    }
                }
                // dQ = scale · dS·K ; dK = scale · dSᵀ·Q
                let mut dq = Tensor::new(ctx.take(bh * t * hd), vec![bh, t, hd]);
                ds.bmm_into(&kv, &mut dq.data);
                dq.scale_assign(scale);
                let mut dst = Tensor::new(ctx.take(bh * t * t), vec![bh, t, t]);
                ds.transpose_last2_into(&mut dst.data);
                ctx.give(ds.data);
                let mut dk = Tensor::new(ctx.take(bh * t * hd), vec![bh, t, hd]);
                dst.bmm_into(&qv, &mut dk.data);
                dk.scale_assign(scale);
                ctx.give(dst.data);
                vec![dq, dk, Tensor::new(dv, vec![bh, t, hd])]
            })),
        )
    }

    /// Layer normalization over the last dimension with affine parameters
    /// `gamma`, `beta` of shape `[D]`.
    // Index loops stride several parallel row buffers at once; iterator
    // rewrites would obscure the shared `r * d` addressing.
    #[allow(clippy::needless_range_loop)]
    pub fn layernorm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let av = self.rc_value(a);
        let gv = self.rc_value(gamma);
        let bv = self.rc_value(beta);
        let (rows, d) = av.rows_cols();
        assert_eq!(gv.shape, vec![d], "gamma shape");
        assert_eq!(bv.shape, vec![d], "beta shape");
        let ctx = self.ctx();
        // Forward: cache normalized activations and 1/std per row.
        let mut out = Tensor::new(self.alloc(av.len()), av.shape.clone());
        let mut xhat = Tensor::new(self.alloc(av.len()), av.shape.clone());
        let mut inv_std = vec![0.0f32; rows];
        for r in 0..rows {
            let x = &av.data[r * d..(r + 1) * d];
            let mean = x.iter().sum::<f32>() / d as f32;
            let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            for c in 0..d {
                let h = (x[c] - mean) * istd;
                xhat.data[r * d + c] = h;
                out.data[r * d + c] = h * gv.data[c] + bv.data[c];
            }
        }
        let gvc = Rc::clone(&gv);
        // Hidden node: pools xhat's buffer when the graph drops.
        let xhat_node = self.push(xhat, vec![], None);
        let xhat = self.rc_value(xhat_node);
        self.push(
            out,
            vec![a.0, gamma.0, beta.0],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = ctx.zeros(&xhat.shape);
                let mut dgamma = Tensor::zeros(&[d]);
                let mut dbeta = Tensor::zeros(&[d]);
                for r in 0..rows {
                    let gh = &g.data[r * d..(r + 1) * d];
                    let xh = &xhat.data[r * d..(r + 1) * d];
                    // dL/dxhat_c = g_c * gamma_c
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for c in 0..d {
                        let dxh = gh[c] * gvc.data[c];
                        sum_dxhat += dxh;
                        sum_dxhat_xhat += dxh * xh[c];
                        dgamma.data[c] += gh[c] * xh[c];
                        dbeta.data[c] += gh[c];
                    }
                    let istd = inv_std[r];
                    let nd = d as f32;
                    for c in 0..d {
                        let dxh = gh[c] * gvc.data[c];
                        dx.data[r * d + c] =
                            istd * (dxh - sum_dxhat / nd - xh[c] * sum_dxhat_xhat / nd);
                    }
                }
                vec![dx, dgamma, dbeta]
            })),
        )
    }

    // ---------------------------------------------------------------
    // Reductions / losses
    // ---------------------------------------------------------------

    /// Mean over all elements → scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let n = av.len().max(1) as f32;
        let shape = av.shape.clone();
        let ctx = self.ctx();
        self.push(
            Tensor::scalar(av.sum() / n),
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut da = ctx.zeros(&shape);
                da.data.fill(g.item() / n);
                vec![da]
            })),
        )
    }

    /// Weighted sum of scalar nodes: `Σ w_i · s_i` → scalar. Used to
    /// combine the three per-field losses (§4.4 Design 2: "the training
    /// minimizes the weighted sum of these losses across fields").
    pub fn weighted_sum(&mut self, terms: &[(Var, f32)]) -> Var {
        assert!(!terms.is_empty(), "weighted_sum of nothing");
        let mut total = 0.0f32;
        for (v, w) in terms {
            let val = self.value(*v);
            assert_eq!(val.len(), 1, "weighted_sum needs scalar terms");
            total += val.item() * w;
        }
        let weights: Vec<f32> = terms.iter().map(|(_, w)| *w).collect();
        self.push(
            Tensor::scalar(total),
            terms.iter().map(|(v, _)| v.0).collect(),
            Some(Box::new(move |g: &Tensor| {
                weights
                    .iter()
                    .map(|w| Tensor::scalar(g.item() * w))
                    .collect()
            })),
        )
    }

    /// Masked mean softmax cross-entropy over logits `[N, C]` with integer
    /// targets. `mask[i] = 0` removes row `i` from the loss (padding).
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: &[usize], mask: &[f32]) -> Var {
        let lv = self.rc_value(logits);
        let (n, c) = lv.rows_cols();
        assert_eq!(targets.len(), n, "targets length");
        assert_eq!(mask.len(), n, "mask length");
        let probs = softmax_lastdim_data(&lv);
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] != 0.0 {
                debug_assert!(targets[i] < c, "target class out of range");
                let p = probs.data[i * c + targets[i]].max(1e-12);
                loss -= (p.ln() as f64) * mask[i] as f64;
            }
        }
        let targets = targets.to_vec();
        let mask = mask.to_vec();
        let ctx = self.ctx();
        self.push(
            Tensor::scalar((loss / denom as f64) as f32),
            vec![logits.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dl = ctx.zeros(&probs.shape);
                for i in 0..n {
                    if mask[i] == 0.0 {
                        continue;
                    }
                    for j in 0..c {
                        let indicator = if j == targets[i] { 1.0 } else { 0.0 };
                        dl.data[i * c + j] =
                            go * mask[i] * (probs.data[i * c + j] - indicator) / denom;
                    }
                }
                vec![dl]
            })),
        )
    }

    /// Masked mean Gaussian negative log-likelihood. The model predicts a
    /// mean and a log-standard-deviation per row (Design 2 of the paper:
    /// "output the parameters of a probability distribution, rather than a
    /// single numerical value"); the loss is
    /// `0.5·((x−μ)/σ)² + log σ + 0.5·log 2π`.
    ///
    /// `log σ` is soft-clamped to `[-7, 3]` (zero gradient outside): an
    /// unbounded head can drive σ into denormal/overflow territory, which
    /// both destabilizes training and makes the f32 kernels pathologically
    /// slow on denormals.
    pub fn gaussian_nll(&mut self, mean_v: Var, log_std: Var, target: &[f32], mask: &[f32]) -> Var {
        let mv = self.rc_value(mean_v);
        let sv = self.rc_value(log_std);
        let n = mv.len();
        assert_eq!(sv.len(), n, "log_std length");
        assert_eq!(target.len(), n, "target length");
        assert_eq!(mask.len(), n, "mask length");
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        const HALF_LN_2PI: f64 = 0.918_938_533_204_672_7;
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] != 0.0 {
                let mu = mv.data[i] as f64;
                let ls = (sv.data[i] as f64).clamp(-7.0, 3.0);
                let x = target[i] as f64;
                let z = (x - mu) * (-ls).exp();
                loss += (0.5 * z * z + ls + HALF_LN_2PI) * mask[i] as f64;
            }
        }
        let target = target.to_vec();
        let mask = mask.to_vec();
        let mshape = mv.shape.clone();
        let sshape = sv.shape.clone();
        self.push(
            Tensor::scalar((loss / denom as f64) as f32),
            vec![mean_v.0, log_std.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dmu = Tensor::zeros(&mshape);
                let mut dls = Tensor::zeros(&sshape);
                for i in 0..n {
                    if mask[i] == 0.0 {
                        continue;
                    }
                    let mu = mv.data[i];
                    let ls_raw = sv.data[i];
                    let ls = ls_raw.clamp(-7.0, 3.0);
                    let x = target[i];
                    let inv_var = (-2.0 * ls).exp();
                    // d/dμ [0.5 (x-μ)² e^{-2ls}] = (μ - x) e^{-2ls}
                    dmu.data[i] = go * mask[i] * (mu - x) * inv_var / denom;
                    // d/dls = 1 - (x-μ)² e^{-2ls}; zero outside the clamp.
                    dls.data[i] = if ls_raw == ls {
                        go * mask[i] * (1.0 - (x - mu) * (x - mu) * inv_var) / denom
                    } else {
                        0.0
                    };
                }
                vec![dmu, dls]
            })),
        )
    }

    /// Masked mean binary cross-entropy on logits (numerically stable
    /// log-sum-exp form). Used by the GAN discriminator/generator losses.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32], mask: &[f32]) -> Var {
        let lv = self.rc_value(logits);
        let n = lv.len();
        assert_eq!(targets.len(), n, "targets length");
        assert_eq!(mask.len(), n, "mask length");
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] != 0.0 {
                let z = lv.data[i] as f64;
                let y = targets[i] as f64;
                loss += (z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()) * mask[i] as f64;
            }
        }
        let targets = targets.to_vec();
        let mask = mask.to_vec();
        let shape = lv.shape.clone();
        self.push(
            Tensor::scalar((loss / denom as f64) as f32),
            vec![logits.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dl = Tensor::zeros(&shape);
                for i in 0..n {
                    if mask[i] == 0.0 {
                        continue;
                    }
                    dl.data[i] = go * mask[i] * (sigmoid_f(lv.data[i]) - targets[i]) / denom;
                }
                vec![dl]
            })),
        )
    }

    /// Masked mean squared error against constant targets.
    pub fn mse_masked(&mut self, pred: Var, target: &[f32], mask: &[f32]) -> Var {
        let pv = self.rc_value(pred);
        let n = pv.len();
        assert_eq!(target.len(), n, "target length");
        assert_eq!(mask.len(), n, "mask length");
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        let loss: f64 = (0..n)
            .filter(|i| mask[*i] != 0.0)
            .map(|i| {
                let d = (pv.data[i] - target[i]) as f64;
                d * d * mask[i] as f64
            })
            .sum::<f64>()
            / denom as f64;
        let target = target.to_vec();
        let mask = mask.to_vec();
        let shape = pv.shape.clone();
        self.push(
            Tensor::scalar(loss as f32),
            vec![pred.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dp = Tensor::zeros(&shape);
                for i in 0..n {
                    if mask[i] != 0.0 {
                        dp.data[i] = go * mask[i] * 2.0 * (pv.data[i] - target[i]) / denom;
                    }
                }
                vec![dp]
            })),
        )
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    /// Runs reverse-mode accumulation from `loss` (which must be scalar).
    /// After this call, [`Graph::grad`] returns `dloss/dnode` for every
    /// node that influences the loss.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).len(),
            1,
            "backward() needs a scalar loss, got {:?}",
            self.value(loss).shape
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::new(vec![1.0], self.value(loss).shape.clone()));
        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            if let Some(bw) = &self.nodes[i].backward {
                let parent_grads = bw(&g);
                debug_assert_eq!(parent_grads.len(), self.nodes[i].parents.len());
                for (p, pg) in self.nodes[i].parents.clone().into_iter().zip(parent_grads) {
                    match &mut grads[p] {
                        Some(existing) => existing.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            self.nodes[i].grad = Some(g);
        }
    }
}

// -------------------------------------------------------------------
// Kernel helpers
// -------------------------------------------------------------------

/// `a + b` where `b.shape` equals `a.shape` or is a suffix of it.
fn broadcast_add(a: &Tensor, b: &Tensor, ctx: &AllocCtx) -> Tensor {
    if a.shape == b.shape {
        return ctx.zip(a, b, |x, y| x + y);
    }
    assert!(
        a.shape.len() >= b.shape.len()
            && a.shape[a.shape.len() - b.shape.len()..] == b.shape[..],
        "broadcast_add: {:?} + {:?}",
        a.shape,
        b.shape
    );
    let chunk = b.len().max(1);
    let mut out = ctx.clone_tensor(a);
    for block in out.data.chunks_mut(chunk) {
        for (o, bv) in block.iter_mut().zip(&b.data) {
            *o += bv;
        }
    }
    out
}

/// Sums `g` over leading dims so the result has `shape` (suffix of
/// `g.shape`). Inverse of broadcasting.
fn reduce_to_shape(g: &Tensor, shape: &[usize], ctx: &AllocCtx) -> Tensor {
    if g.shape == shape {
        return ctx.clone_tensor(g);
    }
    let chunk: usize = shape.iter().product::<usize>().max(1);
    let mut out = ctx.zeros(shape);
    for block in g.data.chunks(chunk) {
        for (o, gv) in out.data.iter_mut().zip(block) {
            *o += gv;
        }
    }
    out
}

fn softmax_lastdim_data(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&x.shape);
    softmax_lastdim_into(x, &mut out.data);
    out
}

fn softmax_lastdim_into(x: &Tensor, out: &mut [f32]) {
    let (rows, cols) = x.rows_cols();
    for r in 0..rows {
        let row = &x.data[r * cols..(r + 1) * cols];
        let orow = &mut out[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, v) in orow.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
}

fn split_heads_data(x: &Tensor, b: usize, t: usize, h: usize, hd: usize, ctx: &AllocCtx) -> Tensor {
    // [B,T,H*hd] -> [B*H, T, hd]
    let mut out = ctx.zeros(&[b * h, t, hd]);
    for bi in 0..b {
        for ti in 0..t {
            for hi in 0..h {
                let src = (bi * t + ti) * h * hd + hi * hd;
                let dst = ((bi * h + hi) * t + ti) * hd;
                out.data[dst..dst + hd].copy_from_slice(&x.data[src..src + hd]);
            }
        }
    }
    out
}

fn merge_heads_data(x: &Tensor, b: usize, t: usize, h: usize, hd: usize, ctx: &AllocCtx) -> Tensor {
    // [B*H, T, hd] -> [B,T,H*hd]
    let mut out = ctx.zeros(&[b, t, h * hd]);
    for bi in 0..b {
        for ti in 0..t {
            for hi in 0..h {
                let src = ((bi * h + hi) * t + ti) * hd;
                let dst = (bi * t + ti) * h * hd + hi * hd;
                out.data[dst..dst + hd].copy_from_slice(&x.data[src..src + hd]);
            }
        }
    }
    out
}

fn sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn gelu_f(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_df(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let th = inner.tanh();
    let sech2 = 1.0 - th * th;
    0.5 * (1.0 + th) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_values_add_mul_matmul() {
        let mut g = Graph::new();
        let a = g.input(Tensor::new(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]));
        let b = g.input(Tensor::new(vec![5.0, 6.0, 7.0, 8.0], vec![2, 2]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data, vec![6.0, 8.0, 10.0, 12.0]);
        let p = g.mul(a, b);
        assert_eq!(g.value(p).data, vec![5.0, 12.0, 21.0, 32.0]);
        let m = g.matmul(a, b);
        assert_eq!(g.value(m).data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn bias_broadcast_add_and_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]));
        let b = g.input(Tensor::new(vec![10.0, 20.0, 30.0], vec![3]));
        let y = g.add(x, b);
        assert_eq!(g.value(y).data, vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let loss = g.mean_all(y);
        g.backward(loss);
        // d(mean)/db_j = (#rows)/N = 2/6.
        let db = g.grad(b).unwrap();
        for v in &db.data {
            assert!((v - 2.0 / 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::new(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], vec![2, 3]));
        let y = g.softmax_lastdim(x);
        let v = g.value(y);
        for r in 0..2 {
            let s: f32 = v.data[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant: row 0 and row 1 differ by constant 2.
        for c in 0..3 {
            assert!((v.data[c] - v.data[3 + c]).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::new(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], vec![2, 3]));
        let loss = g.cross_entropy_logits(logits, &[0, 1], &[1.0, 1.0]);
        // Row losses: -ln(softmax) of the target entries.
        let p0 = (2.0f64.exp()) / (2.0f64.exp() + 2.0);
        let p1 = (3.0f64.exp()) / (3.0f64.exp() + 2.0);
        let expect = -(p0.ln() + p1.ln()) / 2.0;
        assert!((g.value(loss).item() as f64 - expect).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_mask_removes_rows() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::new(vec![2.0, 0.0, 0.0, 9.0], vec![2, 2]));
        let masked = g.cross_entropy_logits(logits, &[0, 0], &[1.0, 0.0]);
        let mut g2 = Graph::new();
        let logits2 = g2.input(Tensor::new(vec![2.0, 0.0], vec![1, 2]));
        let unmasked = g2.cross_entropy_logits(logits2, &[0], &[1.0]);
        assert!((g.value(masked).item() - g2.value(unmasked).item()).abs() < 1e-6);
        // And the masked row receives zero gradient.
        g.backward(masked);
        let dl = g.grad(logits).unwrap();
        assert_eq!(dl.data[2], 0.0);
        assert_eq!(dl.data[3], 0.0);
    }

    #[test]
    fn gaussian_nll_minimized_at_target_mean() {
        // For fixed sigma, NLL at μ = x must be lower than at μ ≠ x.
        let at = |mu: f32| {
            let mut g = Graph::new();
            let m = g.input(Tensor::new(vec![mu], vec![1]));
            let s = g.input(Tensor::new(vec![0.0], vec![1]));
            let l = g.gaussian_nll(m, s, &[1.5], &[1.0]);
            g.value(l).item()
        };
        assert!(at(1.5) < at(0.0));
        assert!(at(1.5) < at(3.0));
        // Analytic value at μ=x, σ=1: 0.5·ln(2π).
        assert!((at(1.5) - 0.918_938_5).abs() < 1e-5);
    }

    #[test]
    fn bce_matches_manual() {
        let mut g = Graph::new();
        let z = g.input(Tensor::new(vec![0.0, 2.0], vec![2]));
        let l = g.bce_with_logits(z, &[1.0, 0.0], &[1.0, 1.0]);
        let expect = ((2.0f64).ln() + (1.0 + (2.0f64).exp()).ln()) / 2.0;
        assert!((g.value(l).item() as f64 - expect).abs() < 1e-5);
    }

    #[test]
    fn backward_through_chain_rule() {
        // loss = mean((a*b + b)²)... simple: y = a*b; loss = mean(y)
        let mut g = Graph::new();
        let a = g.input(Tensor::new(vec![2.0, 3.0], vec![2]));
        let b = g.input(Tensor::new(vec![5.0, 7.0], vec![2]));
        let y = g.mul(a, b);
        let loss = g.mean_all(y);
        g.backward(loss);
        // dloss/da_i = b_i / 2 ; dloss/db_i = a_i / 2
        assert_eq!(g.grad(a).unwrap().data, vec![2.5, 3.5]);
        assert_eq!(g.grad(b).unwrap().data, vec![1.0, 1.5]);
    }

    #[test]
    fn grad_accumulates_over_multiple_uses() {
        // y = a + a → dy/da = 2
        let mut g = Graph::new();
        let a = g.input(Tensor::new(vec![1.0], vec![1]));
        let y = g.add(a, a);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data, vec![2.0]);
    }

    #[test]
    fn split_merge_heads_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 3, 8], 1.0, &mut rng);
        let mut g = Graph::new();
        let v = g.input(x.clone());
        let s = g.split_heads(v, 4);
        assert_eq!(g.value(s).shape, vec![8, 3, 2]);
        let m = g.merge_heads(s, 4);
        assert_eq!(g.value(m).shape, vec![2, 3, 8]);
        for (a, b) in x.data.iter().zip(&g.value(m).data) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn slice_rows_forward_and_backward() {
        let mut g = Graph::new();
        let p = g.input(Tensor::new((0..12).map(|x| x as f32).collect(), vec![4, 3]));
        let s = g.slice_rows(p, 1, 2);
        assert_eq!(g.value(s).data, vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let loss = g.mean_all(s);
        g.backward(loss);
        let dp = g.grad(p).unwrap();
        assert_eq!(dp.data[0..3], [0.0, 0.0, 0.0]);
        assert!((dp.data[3] - 1.0 / 6.0).abs() < 1e-6);
        assert_eq!(dp.data[9..12], [0.0, 0.0, 0.0]);
    }

    #[test]
    fn fused_attention_matches_unfused_chain() {
        // The fused op must agree with the original five-node composition
        // (transpose → bmm → scale → additive causal mask → softmax → bmm)
        // in both forward values and input gradients.
        for causal in [true, false] {
            let mut rng = StdRng::seed_from_u64(40);
            let (bh, t, hd) = (4, 5, 3);
            let q0 = Tensor::randn(&[bh, t, hd], 0.7, &mut rng);
            let k0 = Tensor::randn(&[bh, t, hd], 0.7, &mut rng);
            let v0 = Tensor::randn(&[bh, t, hd], 0.7, &mut rng);
            let scale = 1.0 / (hd as f32).sqrt();

            let mut gf = Graph::new();
            let (qf, kf, vf) = (
                gf.input(q0.clone()),
                gf.input(k0.clone()),
                gf.input(v0.clone()),
            );
            let of = gf.attention(qf, kf, vf, scale, causal);
            let sq = gf.mul(of, of);
            let lf = gf.mean_all(sq);
            gf.backward(lf);

            let mut gu = Graph::new();
            let (qu, ku, vu) = (
                gu.input(q0.clone()),
                gu.input(k0.clone()),
                gu.input(v0.clone()),
            );
            let kt = gu.transpose_last2(ku);
            let scores = gu.bmm(qu, kt);
            let scaled = gu.scale(scores, scale);
            let masked = if causal {
                let mut mask = Tensor::zeros(&[t, t]);
                for i in 0..t {
                    for j in (i + 1)..t {
                        mask.data[i * t + j] = -1e9;
                    }
                }
                let mv = gu.input(mask);
                gu.add(scaled, mv)
            } else {
                scaled
            };
            let attn = gu.softmax_lastdim(masked);
            let ou = gu.bmm(attn, vu);
            let squ = gu.mul(ou, ou);
            let lu = gu.mean_all(squ);
            gu.backward(lu);

            for (a, b) in gf.value(of).data.iter().zip(&gu.value(ou).data) {
                assert!((a - b).abs() < 1e-5, "forward mismatch (causal={causal})");
            }
            for (vf_, vu_) in [(qf, qu), (kf, ku), (vf, vu)] {
                let gfv = gf.grad(vf_).unwrap();
                let guv = gu.grad(vu_).unwrap();
                for (a, b) in gfv.data.iter().zip(&guv.data) {
                    assert!((a - b).abs() < 1e-5, "grad mismatch (causal={causal})");
                }
            }
        }
    }

    #[test]
    fn scratch_arena_recycles_graph_buffers() {
        let arena = crate::scratch::ScratchArena::new();
        let run = |arena: &crate::scratch::ScratchArena| {
            let mut g = Graph::with_scratch(arena.clone());
            let a = g.input(Tensor::ones(&[8, 8]));
            let b = g.input(Tensor::ones(&[8, 8]));
            let m = g.matmul(a, b);
            let s = g.mul(m, m);
            let loss = g.mean_all(s);
            g.backward(loss);
            g.value(loss).item()
        };
        let first = run(&arena);
        let pooled = arena.pooled();
        assert!(pooled > 0, "graph drop must return buffers to the arena");
        // Second run draws from the pool and produces identical results.
        let second = run(&arena);
        assert_eq!(first.to_bits(), second.to_bits());
    }

    #[test]
    fn weighted_sum_combines_scalars() {
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(2.0));
        let b = g.input(Tensor::scalar(10.0));
        let s = g.weighted_sum(&[(a, 1.0), (b, 3.0)]);
        assert_eq!(g.value(s).item(), 32.0);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().item(), 1.0);
        assert_eq!(g.grad(b).unwrap().item(), 3.0);
    }
}
