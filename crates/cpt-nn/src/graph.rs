//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Graph`] is rebuilt per forward pass. Every op appends a node holding
//! the op's output value, its parent node ids and a backward closure that
//! maps the node's output gradient to its parents' gradients. Calling
//! [`Graph::backward`] seeds the loss node with gradient 1 and walks the
//! tape in reverse, accumulating.
//!
//! Losses are fused ops (softmax+CE, Gaussian NLL, …) so intermediate
//! probabilities never need their own gradients and numerical stability is
//! handled in one place.

use crate::tensor::Tensor;
use std::rc::Rc;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Rc<Tensor>,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    grad: Option<Tensor>,
}

/// An autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, parents: Vec<usize>, backward: Option<BackwardFn>) -> Var {
        self.nodes.push(Node {
            value: Rc::new(value),
            parents,
            backward,
            grad: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Adds a leaf node. Leaves receive gradients like any node; callers
    /// read back the ones they care about (parameters) via [`Graph::grad`].
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node (after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    fn rc_value(&self, v: Var) -> Rc<Tensor> {
        Rc::clone(&self.nodes[v.0].value)
    }

    // ---------------------------------------------------------------
    // Elementwise / broadcast arithmetic
    // ---------------------------------------------------------------

    /// `a + b`. `b`'s shape must equal `a`'s or be a suffix of it, in which
    /// case `b` is broadcast over the leading dimensions (bias add).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let out = broadcast_add(&av, &bv);
        let b_shape = bv.shape.clone();
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                let da = g.clone();
                let db = reduce_to_shape(g, &b_shape);
                vec![da, db]
            })),
        )
    }

    /// `a - b` (equal shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let out = av.zip(&bv, |x, y| x - y);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.clone(), g.map(|x| -x)]
            })),
        )
    }

    /// Elementwise `a * b` (equal shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let out = av.zip(&bv, |x, y| x * y);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&bv, |go, y| go * y), g.zip(&av, |go, x| go * x)]
            })),
        )
    }

    /// `a * c` for a scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let av = self.rc_value(a);
        self.push(
            av.map(|x| x * c),
            vec![a.0],
            Some(Box::new(move |g: &Tensor| vec![g.map(|x| x * c)])),
        )
    }

    // ---------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------

    /// 2-D matmul `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let out = av.matmul(&bv);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                // dA = G·Bᵀ ; dB = Aᵀ·G
                vec![g.matmul(&bv.t2()), av.t2().matmul(g)]
            })),
        )
    }

    /// Batched 3-D matmul `[b,m,k] x [b,k,n] -> [b,m,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let av = self.rc_value(a);
        let bv = self.rc_value(b);
        let out = av.bmm(&bv);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g: &Tensor| {
                vec![
                    g.bmm(&bv.transpose_last2()),
                    av.transpose_last2().bmm(g),
                ]
            })),
        )
    }

    /// Transpose of the last two dims of a rank-3 tensor.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        self.push(
            av.transpose_last2(),
            vec![a.0],
            Some(Box::new(move |g: &Tensor| vec![g.transpose_last2()])),
        )
    }

    /// Reshape (element order preserved).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let av = self.rc_value(a);
        let in_shape = av.shape.clone();
        self.push(
            av.reshape(shape),
            vec![a.0],
            Some(Box::new(move |g: &Tensor| vec![g.reshape(&in_shape)])),
        )
    }

    /// Rows `start..start+len` of a 2-D tensor (used to take the first `T`
    /// positional-embedding rows). Backward scatters into a zero tensor.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 2, "slice_rows needs rank 2");
        let (rows, cols) = (av.shape[0], av.shape[1]);
        assert!(start + len <= rows, "slice_rows out of range");
        let out = Tensor::new(
            av.data[start * cols..(start + len) * cols].to_vec(),
            vec![len, cols],
        );
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut da = Tensor::zeros(&[rows, cols]);
                da.data[start * cols..(start + len) * cols].copy_from_slice(&g.data);
                vec![da]
            })),
        )
    }

    /// Concatenates 2-D tensors with equal row counts along the column
    /// axis (used to reassemble multi-field GAN samples). Backward splits
    /// the gradient back per input.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let values: Vec<Rc<Tensor>> = parts.iter().map(|v| self.rc_value(*v)).collect();
        let rows = values[0].shape[0];
        assert!(
            values.iter().all(|t| t.rank() == 2 && t.shape[0] == rows),
            "concat_cols needs rank-2 inputs with equal rows"
        );
        let widths: Vec<usize> = values.iter().map(|t| t.shape[1]).collect();
        let total: usize = widths.iter().sum();
        let mut out = Tensor::zeros(&[rows, total]);
        for r in 0..rows {
            let mut off = 0;
            for (t, w) in values.iter().zip(&widths) {
                out.data[r * total + off..r * total + off + w]
                    .copy_from_slice(&t.data[r * w..(r + 1) * w]);
                off += w;
            }
        }
        let widths_bw = widths.clone();
        self.push(
            out,
            parts.iter().map(|v| v.0).collect(),
            Some(Box::new(move |g: &Tensor| {
                let mut grads: Vec<Tensor> = widths_bw
                    .iter()
                    .map(|w| Tensor::zeros(&[rows, *w]))
                    .collect();
                for r in 0..rows {
                    let mut off = 0;
                    for (gi, w) in grads.iter_mut().zip(&widths_bw) {
                        gi.data[r * w..(r + 1) * w]
                            .copy_from_slice(&g.data[r * total + off..r * total + off + w]);
                        off += w;
                    }
                }
                grads
            })),
        )
    }

    /// Columns `start..start+len` of a 2-D tensor (used to split LSTM gate
    /// pre-activations). Backward scatters into a zero tensor.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 2, "slice_cols needs rank 2");
        let (rows, cols) = (av.shape[0], av.shape[1]);
        assert!(start + len <= cols, "slice_cols out of range");
        let mut out = Tensor::zeros(&[rows, len]);
        for r in 0..rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&av.data[r * cols + start..r * cols + start + len]);
        }
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                let mut da = Tensor::zeros(&[rows, cols]);
                for r in 0..rows {
                    da.data[r * cols + start..r * cols + start + len]
                        .copy_from_slice(&g.data[r * len..(r + 1) * len]);
                }
                vec![da]
            })),
        )
    }

    /// Splits a `[B,T,D]` activation into `[B*H, T, D/H]` head-major
    /// layout for attention. Pure permutation; exact inverse of
    /// [`Graph::merge_heads`].
    pub fn split_heads(&mut self, a: Var, n_heads: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 3, "split_heads needs [B,T,D]");
        let (b, t, d) = (av.shape[0], av.shape[1], av.shape[2]);
        assert_eq!(d % n_heads, 0, "d_model not divisible by heads");
        let hd = d / n_heads;
        let out = split_heads_data(&av, b, t, n_heads, hd);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![merge_heads_data(g, b, t, n_heads, hd)]
            })),
        )
    }

    /// Merges `[B*H, T, hd]` back to `[B,T,H*hd]`.
    pub fn merge_heads(&mut self, a: Var, n_heads: usize) -> Var {
        let av = self.rc_value(a);
        assert_eq!(av.rank(), 3, "merge_heads needs [B*H,T,hd]");
        let bh = av.shape[0];
        assert_eq!(bh % n_heads, 0, "batch not divisible by heads");
        let (b, t, hd) = (bh / n_heads, av.shape[1], av.shape[2]);
        let out = merge_heads_data(&av, b, t, n_heads, hd);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![split_heads_data(g, b, t, n_heads, hd)]
            })),
        )
    }

    // ---------------------------------------------------------------
    // Nonlinearities
    // ---------------------------------------------------------------

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let out = av.map(|x| x.max(0.0));
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&av, |go, x| if x > 0.0 { go } else { 0.0 })]
            })),
        )
    }

    /// GELU (tanh approximation), the transformer MLP activation.
    pub fn gelu(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let out = av.map(gelu_f);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&av, |go, x| go * gelu_df(x))]
            })),
        )
    }

    /// tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let out = av.map(f32::tanh);
        let outv = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&outv, |go, y| go * (1.0 - y * y))]
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let out = av.map(sigmoid_f);
        let outv = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![g.zip(&outv, |go, y| go * y * (1.0 - y))]
            })),
        )
    }

    /// Softmax over the last dimension (numerically stabilized).
    pub fn softmax_lastdim(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let out = softmax_lastdim_data(&av);
        let outv = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                // dx_i = y_i (g_i - Σ_j g_j y_j) per row.
                let (rows, cols) = outv.rows_cols();
                let mut dx = Tensor::zeros(&outv.shape);
                for r in 0..rows {
                    let y = &outv.data[r * cols..(r + 1) * cols];
                    let go = &g.data[r * cols..(r + 1) * cols];
                    let dot: f32 = y.iter().zip(go).map(|(yi, gi)| yi * gi).sum();
                    for c in 0..cols {
                        dx.data[r * cols + c] = y[c] * (go[c] - dot);
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Layer normalization over the last dimension with affine parameters
    /// `gamma`, `beta` of shape `[D]`.
    pub fn layernorm(&mut self, a: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let av = self.rc_value(a);
        let gv = self.rc_value(gamma);
        let bv = self.rc_value(beta);
        let (rows, d) = av.rows_cols();
        assert_eq!(gv.shape, vec![d], "gamma shape");
        assert_eq!(bv.shape, vec![d], "beta shape");
        // Forward: cache normalized activations and 1/std per row.
        let mut out = Tensor::zeros(&av.shape);
        let mut xhat = Tensor::zeros(&av.shape);
        let mut inv_std = vec![0.0f32; rows];
        for r in 0..rows {
            let x = &av.data[r * d..(r + 1) * d];
            let mean = x.iter().sum::<f32>() / d as f32;
            let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            for c in 0..d {
                let h = (x[c] - mean) * istd;
                xhat.data[r * d + c] = h;
                out.data[r * d + c] = h * gv.data[c] + bv.data[c];
            }
        }
        let gvc = Rc::clone(&gv);
        self.push(
            out,
            vec![a.0, gamma.0, beta.0],
            Some(Box::new(move |g: &Tensor| {
                let mut dx = Tensor::zeros(&xhat.shape);
                let mut dgamma = Tensor::zeros(&[d]);
                let mut dbeta = Tensor::zeros(&[d]);
                for r in 0..rows {
                    let gh = &g.data[r * d..(r + 1) * d];
                    let xh = &xhat.data[r * d..(r + 1) * d];
                    // dL/dxhat_c = g_c * gamma_c
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for c in 0..d {
                        let dxh = gh[c] * gvc.data[c];
                        sum_dxhat += dxh;
                        sum_dxhat_xhat += dxh * xh[c];
                        dgamma.data[c] += gh[c] * xh[c];
                        dbeta.data[c] += gh[c];
                    }
                    let istd = inv_std[r];
                    let nd = d as f32;
                    for c in 0..d {
                        let dxh = gh[c] * gvc.data[c];
                        dx.data[r * d + c] =
                            istd * (dxh - sum_dxhat / nd - xh[c] * sum_dxhat_xhat / nd);
                    }
                }
                vec![dx, dgamma, dbeta]
            })),
        )
    }

    // ---------------------------------------------------------------
    // Reductions / losses
    // ---------------------------------------------------------------

    /// Mean over all elements → scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let av = self.rc_value(a);
        let n = av.len().max(1) as f32;
        let shape = av.shape.clone();
        self.push(
            Tensor::scalar(av.sum() / n),
            vec![a.0],
            Some(Box::new(move |g: &Tensor| {
                vec![Tensor::full(&shape, g.item() / n)]
            })),
        )
    }

    /// Weighted sum of scalar nodes: `Σ w_i · s_i` → scalar. Used to
    /// combine the three per-field losses (§4.4 Design 2: "the training
    /// minimizes the weighted sum of these losses across fields").
    pub fn weighted_sum(&mut self, terms: &[(Var, f32)]) -> Var {
        assert!(!terms.is_empty(), "weighted_sum of nothing");
        let mut total = 0.0f32;
        for (v, w) in terms {
            let val = self.value(*v);
            assert_eq!(val.len(), 1, "weighted_sum needs scalar terms");
            total += val.item() * w;
        }
        let weights: Vec<f32> = terms.iter().map(|(_, w)| *w).collect();
        self.push(
            Tensor::scalar(total),
            terms.iter().map(|(v, _)| v.0).collect(),
            Some(Box::new(move |g: &Tensor| {
                weights
                    .iter()
                    .map(|w| Tensor::scalar(g.item() * w))
                    .collect()
            })),
        )
    }

    /// Masked mean softmax cross-entropy over logits `[N, C]` with integer
    /// targets. `mask[i] = 0` removes row `i` from the loss (padding).
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: &[usize], mask: &[f32]) -> Var {
        let lv = self.rc_value(logits);
        let (n, c) = lv.rows_cols();
        assert_eq!(targets.len(), n, "targets length");
        assert_eq!(mask.len(), n, "mask length");
        let probs = softmax_lastdim_data(&lv);
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] != 0.0 {
                debug_assert!(targets[i] < c, "target class out of range");
                let p = probs.data[i * c + targets[i]].max(1e-12);
                loss -= (p.ln() as f64) * mask[i] as f64;
            }
        }
        let targets = targets.to_vec();
        let mask = mask.to_vec();
        self.push(
            Tensor::scalar((loss / denom as f64) as f32),
            vec![logits.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dl = Tensor::zeros(&probs.shape);
                for i in 0..n {
                    if mask[i] == 0.0 {
                        continue;
                    }
                    for j in 0..c {
                        let indicator = if j == targets[i] { 1.0 } else { 0.0 };
                        dl.data[i * c + j] =
                            go * mask[i] * (probs.data[i * c + j] - indicator) / denom;
                    }
                }
                vec![dl]
            })),
        )
    }

    /// Masked mean Gaussian negative log-likelihood. The model predicts a
    /// mean and a log-standard-deviation per row (Design 2 of the paper:
    /// "output the parameters of a probability distribution, rather than a
    /// single numerical value"); the loss is
    /// `0.5·((x−μ)/σ)² + log σ + 0.5·log 2π`.
    ///
    /// `log σ` is soft-clamped to `[-7, 3]` (zero gradient outside): an
    /// unbounded head can drive σ into denormal/overflow territory, which
    /// both destabilizes training and makes the f32 kernels pathologically
    /// slow on denormals.
    pub fn gaussian_nll(&mut self, mean_v: Var, log_std: Var, target: &[f32], mask: &[f32]) -> Var {
        let mv = self.rc_value(mean_v);
        let sv = self.rc_value(log_std);
        let n = mv.len();
        assert_eq!(sv.len(), n, "log_std length");
        assert_eq!(target.len(), n, "target length");
        assert_eq!(mask.len(), n, "mask length");
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        const HALF_LN_2PI: f64 = 0.918_938_533_204_672_7;
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] != 0.0 {
                let mu = mv.data[i] as f64;
                let ls = (sv.data[i] as f64).clamp(-7.0, 3.0);
                let x = target[i] as f64;
                let z = (x - mu) * (-ls).exp();
                loss += (0.5 * z * z + ls + HALF_LN_2PI) * mask[i] as f64;
            }
        }
        let target = target.to_vec();
        let mask = mask.to_vec();
        let mshape = mv.shape.clone();
        let sshape = sv.shape.clone();
        self.push(
            Tensor::scalar((loss / denom as f64) as f32),
            vec![mean_v.0, log_std.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dmu = Tensor::zeros(&mshape);
                let mut dls = Tensor::zeros(&sshape);
                for i in 0..n {
                    if mask[i] == 0.0 {
                        continue;
                    }
                    let mu = mv.data[i];
                    let ls_raw = sv.data[i];
                    let ls = ls_raw.clamp(-7.0, 3.0);
                    let x = target[i];
                    let inv_var = (-2.0 * ls).exp();
                    // d/dμ [0.5 (x-μ)² e^{-2ls}] = (μ - x) e^{-2ls}
                    dmu.data[i] = go * mask[i] * (mu - x) * inv_var / denom;
                    // d/dls = 1 - (x-μ)² e^{-2ls}; zero outside the clamp.
                    dls.data[i] = if ls_raw == ls {
                        go * mask[i] * (1.0 - (x - mu) * (x - mu) * inv_var) / denom
                    } else {
                        0.0
                    };
                }
                vec![dmu, dls]
            })),
        )
    }

    /// Masked mean binary cross-entropy on logits (numerically stable
    /// log-sum-exp form). Used by the GAN discriminator/generator losses.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32], mask: &[f32]) -> Var {
        let lv = self.rc_value(logits);
        let n = lv.len();
        assert_eq!(targets.len(), n, "targets length");
        assert_eq!(mask.len(), n, "mask length");
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] != 0.0 {
                let z = lv.data[i] as f64;
                let y = targets[i] as f64;
                loss += (z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()) * mask[i] as f64;
            }
        }
        let targets = targets.to_vec();
        let mask = mask.to_vec();
        let shape = lv.shape.clone();
        self.push(
            Tensor::scalar((loss / denom as f64) as f32),
            vec![logits.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dl = Tensor::zeros(&shape);
                for i in 0..n {
                    if mask[i] == 0.0 {
                        continue;
                    }
                    dl.data[i] = go * mask[i] * (sigmoid_f(lv.data[i]) - targets[i]) / denom;
                }
                vec![dl]
            })),
        )
    }

    /// Masked mean squared error against constant targets.
    pub fn mse_masked(&mut self, pred: Var, target: &[f32], mask: &[f32]) -> Var {
        let pv = self.rc_value(pred);
        let n = pv.len();
        assert_eq!(target.len(), n, "target length");
        assert_eq!(mask.len(), n, "mask length");
        let denom: f32 = mask.iter().sum::<f32>().max(1e-12);
        let loss: f64 = (0..n)
            .filter(|i| mask[*i] != 0.0)
            .map(|i| {
                let d = (pv.data[i] - target[i]) as f64;
                d * d * mask[i] as f64
            })
            .sum::<f64>()
            / denom as f64;
        let target = target.to_vec();
        let mask = mask.to_vec();
        let shape = pv.shape.clone();
        self.push(
            Tensor::scalar(loss as f32),
            vec![pred.0],
            Some(Box::new(move |g: &Tensor| {
                let go = g.item();
                let mut dp = Tensor::zeros(&shape);
                for i in 0..n {
                    if mask[i] != 0.0 {
                        dp.data[i] = go * mask[i] * 2.0 * (pv.data[i] - target[i]) / denom;
                    }
                }
                vec![dp]
            })),
        )
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    /// Runs reverse-mode accumulation from `loss` (which must be scalar).
    /// After this call, [`Graph::grad`] returns `dloss/dnode` for every
    /// node that influences the loss.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).len(),
            1,
            "backward() needs a scalar loss, got {:?}",
            self.value(loss).shape
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::new(vec![1.0], self.value(loss).shape.clone()));
        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            if let Some(bw) = &self.nodes[i].backward {
                let parent_grads = bw(&g);
                debug_assert_eq!(parent_grads.len(), self.nodes[i].parents.len());
                for (p, pg) in self.nodes[i].parents.clone().into_iter().zip(parent_grads) {
                    match &mut grads[p] {
                        Some(existing) => existing.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            self.nodes[i].grad = Some(g);
        }
    }
}

// -------------------------------------------------------------------
// Kernel helpers
// -------------------------------------------------------------------

/// `a + b` where `b.shape` equals `a.shape` or is a suffix of it.
fn broadcast_add(a: &Tensor, b: &Tensor) -> Tensor {
    if a.shape == b.shape {
        return a.zip(b, |x, y| x + y);
    }
    assert!(
        a.shape.len() >= b.shape.len()
            && a.shape[a.shape.len() - b.shape.len()..] == b.shape[..],
        "broadcast_add: {:?} + {:?}",
        a.shape,
        b.shape
    );
    let chunk = b.len().max(1);
    let mut out = a.clone();
    for block in out.data.chunks_mut(chunk) {
        for (o, bv) in block.iter_mut().zip(&b.data) {
            *o += bv;
        }
    }
    out
}

/// Sums `g` over leading dims so the result has `shape` (suffix of
/// `g.shape`). Inverse of broadcasting.
fn reduce_to_shape(g: &Tensor, shape: &[usize]) -> Tensor {
    if g.shape == shape {
        return g.clone();
    }
    let chunk: usize = shape.iter().product::<usize>().max(1);
    let mut out = Tensor::zeros(shape);
    for block in g.data.chunks(chunk) {
        for (o, gv) in out.data.iter_mut().zip(block) {
            *o += gv;
        }
    }
    out
}

fn softmax_lastdim_data(x: &Tensor) -> Tensor {
    let (rows, cols) = x.rows_cols();
    let mut out = Tensor::zeros(&x.shape);
    for r in 0..rows {
        let row = &x.data[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for c in 0..cols {
            let e = (row[c] - max).exp();
            out.data[r * cols + c] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for c in 0..cols {
            out.data[r * cols + c] *= inv;
        }
    }
    out
}

fn split_heads_data(x: &Tensor, b: usize, t: usize, h: usize, hd: usize) -> Tensor {
    // [B,T,H*hd] -> [B*H, T, hd]
    let mut out = Tensor::zeros(&[b * h, t, hd]);
    for bi in 0..b {
        for ti in 0..t {
            for hi in 0..h {
                let src = (bi * t + ti) * h * hd + hi * hd;
                let dst = ((bi * h + hi) * t + ti) * hd;
                out.data[dst..dst + hd].copy_from_slice(&x.data[src..src + hd]);
            }
        }
    }
    out
}

fn merge_heads_data(x: &Tensor, b: usize, t: usize, h: usize, hd: usize) -> Tensor {
    // [B*H, T, hd] -> [B,T,H*hd]
    let mut out = Tensor::zeros(&[b, t, h * hd]);
    for bi in 0..b {
        for ti in 0..t {
            for hi in 0..h {
                let src = ((bi * h + hi) * t + ti) * hd;
                let dst = (bi * t + ti) * h * hd + hi * hd;
                out.data[dst..dst + hd].copy_from_slice(&x.data[src..src + hd]);
            }
        }
    }
    out
}

fn sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn gelu_f(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_df(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let th = inner.tanh();
    let sech2 = 1.0 - th * th;
    0.5 * (1.0 + th) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_values_add_mul_matmul() {
        let mut g = Graph::new();
        let a = g.input(Tensor::new(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]));
        let b = g.input(Tensor::new(vec![5.0, 6.0, 7.0, 8.0], vec![2, 2]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data, vec![6.0, 8.0, 10.0, 12.0]);
        let p = g.mul(a, b);
        assert_eq!(g.value(p).data, vec![5.0, 12.0, 21.0, 32.0]);
        let m = g.matmul(a, b);
        assert_eq!(g.value(m).data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn bias_broadcast_add_and_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]));
        let b = g.input(Tensor::new(vec![10.0, 20.0, 30.0], vec![3]));
        let y = g.add(x, b);
        assert_eq!(g.value(y).data, vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let loss = g.mean_all(y);
        g.backward(loss);
        // d(mean)/db_j = (#rows)/N = 2/6.
        let db = g.grad(b).unwrap();
        for v in &db.data {
            assert!((v - 2.0 / 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::new(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], vec![2, 3]));
        let y = g.softmax_lastdim(x);
        let v = g.value(y);
        for r in 0..2 {
            let s: f32 = v.data[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Softmax is shift-invariant: row 0 and row 1 differ by constant 2.
        for c in 0..3 {
            assert!((v.data[c] - v.data[3 + c]).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::new(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], vec![2, 3]));
        let loss = g.cross_entropy_logits(logits, &[0, 1], &[1.0, 1.0]);
        // Row losses: -ln(softmax) of the target entries.
        let p0 = (2.0f64.exp()) / (2.0f64.exp() + 2.0);
        let p1 = (3.0f64.exp()) / (3.0f64.exp() + 2.0);
        let expect = -(p0.ln() + p1.ln()) / 2.0;
        assert!((g.value(loss).item() as f64 - expect).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_mask_removes_rows() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::new(vec![2.0, 0.0, 0.0, 9.0], vec![2, 2]));
        let masked = g.cross_entropy_logits(logits, &[0, 0], &[1.0, 0.0]);
        let mut g2 = Graph::new();
        let logits2 = g2.input(Tensor::new(vec![2.0, 0.0], vec![1, 2]));
        let unmasked = g2.cross_entropy_logits(logits2, &[0], &[1.0]);
        assert!((g.value(masked).item() - g2.value(unmasked).item()).abs() < 1e-6);
        // And the masked row receives zero gradient.
        g.backward(masked);
        let dl = g.grad(logits).unwrap();
        assert_eq!(dl.data[2], 0.0);
        assert_eq!(dl.data[3], 0.0);
    }

    #[test]
    fn gaussian_nll_minimized_at_target_mean() {
        // For fixed sigma, NLL at μ = x must be lower than at μ ≠ x.
        let at = |mu: f32| {
            let mut g = Graph::new();
            let m = g.input(Tensor::new(vec![mu], vec![1]));
            let s = g.input(Tensor::new(vec![0.0], vec![1]));
            let l = g.gaussian_nll(m, s, &[1.5], &[1.0]);
            g.value(l).item()
        };
        assert!(at(1.5) < at(0.0));
        assert!(at(1.5) < at(3.0));
        // Analytic value at μ=x, σ=1: 0.5·ln(2π).
        assert!((at(1.5) - 0.918_938_5).abs() < 1e-5);
    }

    #[test]
    fn bce_matches_manual() {
        let mut g = Graph::new();
        let z = g.input(Tensor::new(vec![0.0, 2.0], vec![2]));
        let l = g.bce_with_logits(z, &[1.0, 0.0], &[1.0, 1.0]);
        let expect = ((2.0f64).ln() + (1.0 + (2.0f64).exp()).ln()) / 2.0;
        assert!((g.value(l).item() as f64 - expect).abs() < 1e-5);
    }

    #[test]
    fn backward_through_chain_rule() {
        // loss = mean((a*b + b)²)... simple: y = a*b; loss = mean(y)
        let mut g = Graph::new();
        let a = g.input(Tensor::new(vec![2.0, 3.0], vec![2]));
        let b = g.input(Tensor::new(vec![5.0, 7.0], vec![2]));
        let y = g.mul(a, b);
        let loss = g.mean_all(y);
        g.backward(loss);
        // dloss/da_i = b_i / 2 ; dloss/db_i = a_i / 2
        assert_eq!(g.grad(a).unwrap().data, vec![2.5, 3.5]);
        assert_eq!(g.grad(b).unwrap().data, vec![1.0, 1.5]);
    }

    #[test]
    fn grad_accumulates_over_multiple_uses() {
        // y = a + a → dy/da = 2
        let mut g = Graph::new();
        let a = g.input(Tensor::new(vec![1.0], vec![1]));
        let y = g.add(a, a);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data, vec![2.0]);
    }

    #[test]
    fn split_merge_heads_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&[2, 3, 8], 1.0, &mut rng);
        let mut g = Graph::new();
        let v = g.input(x.clone());
        let s = g.split_heads(v, 4);
        assert_eq!(g.value(s).shape, vec![8, 3, 2]);
        let m = g.merge_heads(s, 4);
        assert_eq!(g.value(m).shape, vec![2, 3, 8]);
        for (a, b) in x.data.iter().zip(&g.value(m).data) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn slice_rows_forward_and_backward() {
        let mut g = Graph::new();
        let p = g.input(Tensor::new((0..12).map(|x| x as f32).collect(), vec![4, 3]));
        let s = g.slice_rows(p, 1, 2);
        assert_eq!(g.value(s).data, vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let loss = g.mean_all(s);
        g.backward(loss);
        let dp = g.grad(p).unwrap();
        assert_eq!(dp.data[0..3], [0.0, 0.0, 0.0]);
        assert!((dp.data[3] - 1.0 / 6.0).abs() < 1e-6);
        assert_eq!(dp.data[9..12], [0.0, 0.0, 0.0]);
    }

    #[test]
    fn weighted_sum_combines_scalars() {
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(2.0));
        let b = g.input(Tensor::scalar(10.0));
        let s = g.weighted_sum(&[(a, 1.0), (b, 3.0)]);
        assert_eq!(g.value(s).item(), 32.0);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().item(), 1.0);
        assert_eq!(g.grad(b).unwrap().item(), 3.0);
    }
}
