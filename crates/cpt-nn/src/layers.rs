//! Parameterized layers: parameters persist in a [`ParamStore`] across the
//! per-batch graphs; a [`Session`] binds store parameters into a graph and
//! collects their gradients after backward.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Dense index of this parameter within its store (also the index of
    /// its optimizer state).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Param {
    pub(crate) name: String,
    pub(crate) value: Tensor,
    pub(crate) grad: Tensor,
}

/// Owns all trainable parameters of a model plus their gradient
/// accumulators.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    pub(crate) params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter. Names must be unique — they key checkpoint
    /// files.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            self.params.iter().all(|p| p.name != name),
            "duplicate parameter name {name:?}"
        );
        let grad = Tensor::zeros(&value.shape);
        self.params.push(Param { name, value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn num_tensors(&self) -> usize {
        self.params.len()
    }

    /// Total number of scalar parameters (the "725 k parameters" count the
    /// paper reports for CPT-GPT).
    pub fn num_params(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable view of a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable view of a parameter value (optimizer updates).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Immutable view of a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// All parameter ids.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    /// Zeroes every gradient accumulator (call after each optimizer step).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            for g in &mut p.grad.data {
                *g = 0.0;
            }
        }
    }

    /// Accumulates a gradient set produced by [`Session::grads`].
    pub fn accumulate_grads(&mut self, grads: &[(ParamId, Tensor)]) {
        for (id, g) in grads {
            self.params[id.0].grad.add_assign(g);
        }
    }
}

/// Binds [`ParamStore`] parameters into a fresh [`Graph`] for one forward/
/// backward pass. Each parameter becomes a single leaf no matter how many
/// times it is used.
pub struct Session<'s> {
    /// The underlying autodiff graph (public so model code can call raw
    /// graph ops directly).
    pub graph: Graph,
    store: &'s ParamStore,
    bound: Vec<Option<Var>>,
}

impl<'s> Session<'s> {
    /// Starts a session over `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Session {
            graph: Graph::new(),
            store,
            bound: vec![None; store.params.len()],
        }
    }

    /// Starts a session whose graph draws node storage from `arena` and
    /// returns it on drop. Pass the same arena to every per-batch session
    /// so the training loop stops allocating after the first batch.
    pub fn with_scratch(store: &'s ParamStore, arena: crate::scratch::ScratchArena) -> Self {
        Session {
            graph: Graph::with_scratch(arena),
            store,
            bound: vec![None; store.params.len()],
        }
    }

    /// Leaf for a parameter (cached per session).
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.bound[id.0] {
            return v;
        }
        let v = self.graph.input(self.store.value(id).clone());
        self.bound[id.0] = Some(v);
        v
    }

    /// Leaf for non-parameter data (activations, masks, constants).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.graph.input(t)
    }

    /// Runs backward from `loss`.
    pub fn backward(&mut self, loss: Var) {
        self.graph.backward(loss);
    }

    /// Inverted dropout: zeroes each activation with probability `p` and
    /// scales survivors by `1/(1-p)` so the expected activation is
    /// unchanged. Apply only during training (inference paths simply skip
    /// the call). A no-op when `p <= 0`.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut impl Rng) -> Var {
        if p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let shape = self.graph.value(x).shape.clone();
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let n: usize = shape.iter().product();
        let mask = Tensor::new(
            (0..n)
                .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
                .collect(),
            shape,
        );
        let m = self.input(mask);
        self.graph.mul(x, m)
    }

    /// Collects the gradients of every bound parameter (after
    /// [`Session::backward`]). Feed the result to
    /// [`ParamStore::accumulate_grads`].
    pub fn grads(&self) -> Vec<(ParamId, Tensor)> {
        self.bound
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                let v = (*v)?;
                let g = self.graph.grad(v)?;
                Some((ParamId(i), g.clone()))
            })
            .collect()
    }
}

/// Fully connected layer `y = x·W + b` with Xavier-uniform-equivalent
/// normal init.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a linear layer; parameters are registered in `store` under
    /// `name.w` / `name.b`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let std = (2.0 / (in_dim + out_dim) as f32).sqrt();
        let w = store.add(format!("{name}.w"), Tensor::randn(&[in_dim, out_dim], std, rng));
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer. Accepts `[N, in]` or `[B, T, in]` (reshaped
    /// through 2-D internally).
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let in_shape = sess.graph.value(x).shape.clone();
        assert_eq!(
            *in_shape.last().expect("rank >= 1"),
            self.in_dim,
            "Linear input dim mismatch"
        );
        let rows: usize = in_shape[..in_shape.len() - 1].iter().product();
        let x2 = if in_shape.len() == 2 {
            x
        } else {
            sess.graph.reshape(x, &[rows, self.in_dim])
        };
        let w = self.param_w(sess);
        let mut y = sess.graph.matmul(x2, w);
        if let Some(b) = self.b {
            let bv = sess.param(b);
            y = sess.graph.add(y, bv);
        }
        if in_shape.len() == 2 {
            y
        } else {
            let mut out_shape = in_shape;
            *out_shape.last_mut().expect("rank >= 1") = self.out_dim;
            sess.graph.reshape(y, &out_shape)
        }
    }

    fn param_w(&self, sess: &mut Session<'_>) -> Var {
        sess.param(self.w)
    }

    /// Gradient-free application straight from the store (inference fast
    /// path; no tape is built). Accepts `[N, in]` or `[B, T, in]`.
    pub fn apply(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let in_shape = x.shape.clone();
        assert_eq!(*in_shape.last().expect("rank >= 1"), self.in_dim);
        let rows: usize = in_shape[..in_shape.len() - 1].iter().product();
        let mut out_shape = in_shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_dim;
        let mut y = Tensor::zeros(&out_shape);
        self.apply_rows_into(store, &x.data, rows, &mut y.data);
        y
    }

    /// [`Linear::apply`] on raw row-major slices, writing into a
    /// caller-provided buffer (overwritten entirely). This is the
    /// allocation-free inner loop of incremental decoding: `x` is
    /// `rows × in_dim`, `out` is `rows × out_dim`.
    pub fn apply_rows_into(&self, store: &ParamStore, x: &[f32], rows: usize, out: &mut [f32]) {
        assert_eq!(x.len(), rows * self.in_dim, "Linear input size");
        assert_eq!(out.len(), rows * self.out_dim, "Linear output size");
        let w = store.value(self.w);
        crate::tensor::matmul_into(x, &w.data, out, rows, self.in_dim, self.out_dim);
        if let Some(b) = self.b {
            let bias = store.value(b);
            for row in out.chunks_mut(self.out_dim) {
                for (o, bv) in row.iter_mut().zip(&bias.data) {
                    *o += bv;
                }
            }
        }
    }
}

/// Layer normalization with learned affine parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over the last `dim` features.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: store.add(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: store.add(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Applies normalization.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let gamma = sess.param(self.gamma);
        let beta = sess.param(self.beta);
        sess.graph.layernorm(x, gamma, beta, self.eps)
    }

    /// Gradient-free application straight from the store.
    pub fn apply(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&x.shape);
        let (rows, _) = x.rows_cols();
        self.apply_rows_into(store, &x.data, rows, &mut out.data);
        out
    }

    /// [`LayerNorm::apply`] on raw row-major slices into a caller-provided
    /// buffer (overwritten entirely). `x` and `out` are `rows × dim`.
    pub fn apply_rows_into(&self, store: &ParamStore, x: &[f32], rows: usize, out: &mut [f32]) {
        let gamma = store.value(self.gamma);
        let beta = store.value(self.beta);
        let d = gamma.len();
        assert_eq!(x.len(), rows * d, "layernorm input size");
        assert_eq!(out.len(), rows * d, "layernorm output size");
        for r in 0..rows {
            let row = &x[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            for c in 0..d {
                out[r * d + c] = (row[c] - mean) * istd * gamma.data[c] + beta.data[c];
            }
        }
    }
}

/// Multi-head self-attention with optional causal masking — the core of
/// the decoder-only transformer (§4.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    d_model: usize,
    causal: bool,
}

impl MultiHeadSelfAttention {
    /// Creates an attention layer with `n_heads` heads over `d_model`
    /// features.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        n_heads: usize,
        causal: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide by heads");
        MultiHeadSelfAttention {
            wq: Linear::new(store, &format!("{name}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(store, &format!("{name}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(store, &format!("{name}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(store, &format!("{name}.wo"), d_model, d_model, true, rng),
            n_heads,
            d_model,
            causal,
        }
    }

    /// Applies self-attention to `x` of shape `[B, T, d_model]`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let shape = sess.graph.value(x).shape.clone();
        assert_eq!(shape.len(), 3, "attention input must be [B,T,D]");
        let hd = self.d_model / self.n_heads;

        let q = self.wq.forward(sess, x);
        let k = self.wk.forward(sess, x);
        let v = self.wv.forward(sess, x);
        let qh = sess.graph.split_heads(q, self.n_heads); // [BH,T,hd]
        let kh = sess.graph.split_heads(k, self.n_heads);
        let vh = sess.graph.split_heads(v, self.n_heads);

        // Fused score→scale→mask→softmax→context as one tape node.
        let ctx = sess
            .graph
            .attention(qh, kh, vh, 1.0 / (hd as f32).sqrt(), self.causal);
        let merged = sess.graph.merge_heads(ctx, self.n_heads); // [B,T,D]
        self.wo.forward(sess, merged)
    }
}

/// Per-layer key/value cache for incremental (token-at-a-time) decoding.
///
/// Autoregressive sampling re-processes the whole prefix on every step if
/// done naively — O(T²) attention per *step*, O(T³) per stream. Caching
/// each layer's keys and values makes a decode step O(T), which is how
/// production transformer inference works.
#[derive(Debug, Clone)]
pub struct AttnKvCache {
    /// Keys, `[B·H, max_len, hd]`; rows `0..len` are valid.
    k: Tensor,
    /// Values, same layout.
    v: Tensor,
    /// Number of cached positions.
    len: usize,
    bh: usize,
    max_len: usize,
    hd: usize,
}

impl AttnKvCache {
    /// Preallocates a cache for `b` streams, `h` heads, head width `hd`.
    pub fn new(b: usize, h: usize, max_len: usize, hd: usize) -> Self {
        AttnKvCache {
            k: Tensor::zeros(&[b * h, max_len, hd]),
            v: Tensor::zeros(&[b * h, max_len, hd]),
            len: 0,
            bh: b * h,
            max_len,
            hd,
        }
    }

    /// Cached positions so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rewinds the cache to empty so its buffers can be reused for a new
    /// stream. Only rows `0..len` are ever read and each decode step writes
    /// row `len` before reading it, so clearing the length alone makes the
    /// cache byte-equivalent to a freshly allocated one.
    pub fn reset(&mut self) {
        self.len = 0;
    }
}

/// Reusable buffers for one attention decode step. Sized once by
/// [`AttnScratch::new`]; every step overwrites them in place, so steady-
/// state decoding performs zero heap allocation.
#[derive(Debug, Clone)]
pub struct AttnScratch {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    ctx: Vec<f32>,
    scores: Vec<f32>,
}

impl AttnScratch {
    /// Buffers for batch size `b`, model width `d_model`, prefix capacity
    /// `max_len`.
    pub fn new(b: usize, d_model: usize, max_len: usize) -> Self {
        AttnScratch {
            q: vec![0.0; b * d_model],
            k: vec![0.0; b * d_model],
            v: vec![0.0; b * d_model],
            ctx: vec![0.0; b * d_model],
            scores: vec![0.0; max_len],
        }
    }
}

/// Reusable buffers for one [`TransformerBlock`] decode step (attention
/// scratch plus the layernorm/MLP/residual temporaries).
#[derive(Debug, Clone)]
pub struct DecodeScratch {
    attn: AttnScratch,
    norm: Vec<f32>,
    mlp: Vec<f32>,
    resid: Vec<f32>,
}

impl DecodeScratch {
    /// Buffers for batch size `b`; `d_mlp` is the block MLP hidden width.
    pub fn new(b: usize, d_model: usize, d_mlp: usize, max_len: usize) -> Self {
        DecodeScratch {
            attn: AttnScratch::new(b, d_model, max_len),
            norm: vec![0.0; b * d_model],
            mlp: vec![0.0; b * d_mlp],
            resid: vec![0.0; b * d_model],
        }
    }
}

impl MultiHeadSelfAttention {
    /// One gradient-free decode step: processes the single new position
    /// `x` (`[B, 1, D]`), appends its K/V to `cache`, and returns the
    /// attention output `[B, 1, D]`. Equivalent to running
    /// [`MultiHeadSelfAttention::forward`] on the full prefix and taking
    /// the last position (verified by tests). Allocates its scratch; hot
    /// loops should hold a [`AttnScratch`] and call
    /// [`MultiHeadSelfAttention::decode_step_into`] instead.
    pub fn apply_decode_step(
        &self,
        store: &ParamStore,
        x: &Tensor,
        cache: &mut AttnKvCache,
    ) -> Tensor {
        assert_eq!(x.rank(), 3, "decode step input must be [B,1,D]");
        assert_eq!(x.shape[1], 1, "decode step processes one position");
        let b = x.shape[0];
        let mut scratch = AttnScratch::new(b, self.d_model, cache.max_len);
        let mut out = Tensor::zeros(&[b, 1, self.d_model]);
        self.decode_step_into(store, &x.data, cache, &mut scratch, &mut out.data);
        out
    }

    /// Allocation-free decode step on raw slices: `x` and `out` are
    /// `b × d_model` (the single new position per stream, batch-major).
    /// All temporaries live in `scratch`, which is overwritten.
    pub fn decode_step_into(
        &self,
        store: &ParamStore,
        x: &[f32],
        cache: &mut AttnKvCache,
        scratch: &mut AttnScratch,
        out: &mut [f32],
    ) {
        let h = self.n_heads;
        let hd = self.d_model / h;
        let b = x.len() / self.d_model;
        assert_eq!(x.len(), b * self.d_model, "decode step input size");
        assert_eq!(out.len(), b * self.d_model, "decode step output size");
        assert_eq!(cache.bh, b * h, "cache batch mismatch");
        assert_eq!(cache.hd, hd, "cache head width mismatch");
        assert!(cache.len < cache.max_len, "KV cache full");

        self.wq.apply_rows_into(store, x, b, &mut scratch.q);
        self.wk.apply_rows_into(store, x, b, &mut scratch.k);
        self.wv.apply_rows_into(store, x, b, &mut scratch.v);
        let t = cache.len;

        // Scatter the new K/V rows into the cache ([B,D] → per-head).
        for bi in 0..b {
            for hi in 0..h {
                let src = bi * self.d_model + hi * hd;
                let dst = ((bi * h + hi) * cache.max_len + t) * hd;
                cache.k.data[dst..dst + hd].copy_from_slice(&scratch.k[src..src + hd]);
                cache.v.data[dst..dst + hd].copy_from_slice(&scratch.v[src..src + hd]);
            }
        }
        cache.len += 1;

        // Attention of the new query over positions 0..=t.
        let scale = 1.0 / (hd as f32).sqrt();
        scratch.ctx.fill(0.0);
        let scores = &mut scratch.scores[..t + 1];
        for bi in 0..b {
            for hi in 0..h {
                let qoff = bi * self.d_model + hi * hd;
                let qrow = &scratch.q[qoff..qoff + hd];
                let base = (bi * h + hi) * cache.max_len * hd;
                let mut max = f32::NEG_INFINITY;
                for (j, s) in scores.iter_mut().enumerate() {
                    let krow = &cache.k.data[base + j * hd..base + (j + 1) * hd];
                    *s = qrow.iter().zip(krow).map(|(a, c)| a * c).sum::<f32>() * scale;
                    max = max.max(*s);
                }
                let mut denom = 0.0f32;
                for s in scores.iter_mut() {
                    *s = (*s - max).exp();
                    denom += *s;
                }
                let inv = 1.0 / denom;
                let ctx = &mut scratch.ctx[bi * self.d_model + hi * hd..][..hd];
                for (j, s) in scores.iter().enumerate() {
                    let a = s * inv;
                    let vrow = &cache.v.data[base + j * hd..base + (j + 1) * hd];
                    for (o, vv) in ctx.iter_mut().zip(vrow) {
                        *o += a * vv;
                    }
                }
            }
        }
        self.wo.apply_rows_into(store, &scratch.ctx, b, out);
    }

    /// Cross-session decode step: one new position for each of `n`
    /// independent sessions, each with its *own* batch-1 cache (possibly at
    /// a different length). The Q/K/V/O projections run as single
    /// `[n × d_model]` GEMMs — this is where batching pays, since B-packing
    /// cost is amortized over all sessions — while the KV scatter and the
    /// softmax/context run per session against that session's cache.
    ///
    /// Per-row bit-identity with the sequential path: the packed kernel
    /// accumulates each output row independently of row grouping (see
    /// `matmul_rows`), and every per-session op below executes the exact
    /// scalar order of [`MultiHeadSelfAttention::decode_step_into`] at
    /// `b = 1`, so row `i` of `out` equals the sequential result for
    /// session `i`, bit for bit.
    ///
    /// `x`/`out` are `n × d_model` (session-major); `scratch` may be sized
    /// for a larger batch (only the first `n` rows are used).
    pub fn decode_step_multi(
        &self,
        store: &ParamStore,
        x: &[f32],
        caches: &mut [&mut AttnKvCache],
        scratch: &mut AttnScratch,
        out: &mut [f32],
    ) {
        let h = self.n_heads;
        let hd = self.d_model / h;
        let n = caches.len();
        assert_eq!(x.len(), n * self.d_model, "multi decode input size");
        assert_eq!(out.len(), n * self.d_model, "multi decode output size");

        let nd = n * self.d_model;
        self.wq.apply_rows_into(store, x, n, &mut scratch.q[..nd]);
        self.wk.apply_rows_into(store, x, n, &mut scratch.k[..nd]);
        self.wv.apply_rows_into(store, x, n, &mut scratch.v[..nd]);

        scratch.ctx[..nd].fill(0.0);
        for (i, cache) in caches.iter_mut().enumerate() {
            let row = i * self.d_model;
            scatter_kv_one_session(cache, &scratch.k[row..row + self.d_model], &scratch.v[row..row + self.d_model], h, hd);
            attend_one_session(
                &scratch.q[row..row + self.d_model],
                cache,
                &mut scratch.scores,
                &mut scratch.ctx[row..row + self.d_model],
                h,
                hd,
            );
        }
        self.wo.apply_rows_into(store, &scratch.ctx[..nd], n, out);
    }
}

/// Appends one session's new K/V rows (`d_model` each, head-major) to its
/// batch-1 cache. Identical index math to the `b = 1` scatter in
/// [`MultiHeadSelfAttention::decode_step_into`].
fn scatter_kv_one_session(cache: &mut AttnKvCache, k_row: &[f32], v_row: &[f32], h: usize, hd: usize) {
    assert_eq!(cache.bh, h, "multi decode caches must be batch-1");
    assert_eq!(cache.hd, hd, "cache head width mismatch");
    assert!(cache.len < cache.max_len, "KV cache full");
    let t = cache.len;
    for hi in 0..h {
        let src = hi * hd;
        let dst = (hi * cache.max_len + t) * hd;
        cache.k.data[dst..dst + hd].copy_from_slice(&k_row[src..src + hd]);
        cache.v.data[dst..dst + hd].copy_from_slice(&v_row[src..src + hd]);
    }
    cache.len += 1;
}

/// Softmax attention of one session's new query row over its own cached
/// prefix, accumulating into `ctx` (caller zeroes it). Scalar-for-scalar
/// the `b = 1` inner loop of [`MultiHeadSelfAttention::decode_step_into`].
fn attend_one_session(
    q_row: &[f32],
    cache: &AttnKvCache,
    scores_buf: &mut [f32],
    ctx: &mut [f32],
    h: usize,
    hd: usize,
) {
    let t = cache.len - 1; // cache already holds the new position
    let scale = 1.0 / (hd as f32).sqrt();
    let scores = &mut scores_buf[..t + 1];
    for hi in 0..h {
        let qrow = &q_row[hi * hd..(hi + 1) * hd];
        let base = hi * cache.max_len * hd;
        let mut max = f32::NEG_INFINITY;
        for (j, s) in scores.iter_mut().enumerate() {
            let krow = &cache.k.data[base + j * hd..base + (j + 1) * hd];
            *s = qrow.iter().zip(krow).map(|(a, c)| a * c).sum::<f32>() * scale;
            max = max.max(*s);
        }
        let mut denom = 0.0f32;
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
            denom += *s;
        }
        let inv = 1.0 / denom;
        let cslice = &mut ctx[hi * hd..(hi + 1) * hd];
        for (j, s) in scores.iter().enumerate() {
            let a = s * inv;
            let vrow = &cache.v.data[base + j * hd..base + (j + 1) * hd];
            for (o, vv) in cslice.iter_mut().zip(vrow) {
                *o += a * vv;
            }
        }
    }
}

/// Pre-LayerNorm transformer block: `x + Attn(LN(x))`, then
/// `x + MLP(LN(x))` with a GELU MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
}

impl TransformerBlock {
    /// Creates a block with MLP hidden size `d_mlp` (the paper uses
    /// d_model 128 / d_mlp 1024).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        n_heads: usize,
        d_mlp: usize,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), d_model),
            attn: MultiHeadSelfAttention::new(
                store,
                &format!("{name}.attn"),
                d_model,
                n_heads,
                true,
                rng,
            ),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), d_model),
            fc1: Linear::new(store, &format!("{name}.fc1"), d_model, d_mlp, true, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), d_mlp, d_model, true, rng),
        }
    }

    /// Applies the block to `[B,T,D]`.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let n1 = self.ln1.forward(sess, x);
        let a = self.attn.forward(sess, n1);
        let x = sess.graph.add(x, a);
        let n2 = self.ln2.forward(sess, x);
        let h = self.fc1.forward(sess, n2);
        let h = sess.graph.gelu(h);
        let h = self.fc2.forward(sess, h);
        sess.graph.add(x, h)
    }

    /// One gradient-free decode step through the block (see
    /// [`MultiHeadSelfAttention::apply_decode_step`]). Allocates its
    /// scratch; hot loops should hold a [`DecodeScratch`] and call
    /// [`TransformerBlock::decode_step_into`] instead.
    pub fn apply_decode_step(
        &self,
        store: &ParamStore,
        x: &Tensor,
        cache: &mut AttnKvCache,
    ) -> Tensor {
        let b = x.shape[0];
        let mut scratch = DecodeScratch::new(b, self.attn.d_model, self.fc1.out_dim, cache.max_len);
        let mut h = x.clone();
        self.decode_step_into(store, &mut h.data, cache, &mut scratch);
        h
    }

    /// Allocation-free decode step: updates the residual stream `h`
    /// (`b × d_model`, the single new position per stream) in place. All
    /// temporaries live in `scratch`, which is overwritten.
    pub fn decode_step_into(
        &self,
        store: &ParamStore,
        h: &mut [f32],
        cache: &mut AttnKvCache,
        scratch: &mut DecodeScratch,
    ) {
        let d = self.attn.d_model;
        let b = h.len() / d;
        assert_eq!(h.len(), b * d, "decode step residual size");
        self.ln1.apply_rows_into(store, h, b, &mut scratch.norm);
        self.attn
            .decode_step_into(store, &scratch.norm, cache, &mut scratch.attn, &mut scratch.resid);
        for (hv, av) in h.iter_mut().zip(&scratch.resid) {
            *hv += av;
        }
        self.ln2.apply_rows_into(store, h, b, &mut scratch.norm);
        self.fc1.apply_rows_into(store, &scratch.norm, b, &mut scratch.mlp);
        for v in &mut scratch.mlp {
            *v = gelu_scalar(*v);
        }
        self.fc2.apply_rows_into(store, &scratch.mlp, b, &mut scratch.resid);
        for (hv, mv) in h.iter_mut().zip(&scratch.resid) {
            *hv += mv;
        }
    }

    /// Cross-session decode step through the block: updates the residual
    /// rows `h` (`n × d_model`, one new position per session) in place,
    /// with per-session batch-1 caches. LayerNorm/GELU/residual are
    /// row-wise and the GEMMs are row-partition-invariant, so each row is
    /// bit-identical to [`TransformerBlock::decode_step_into`] at `b = 1`
    /// (see [`MultiHeadSelfAttention::decode_step_multi`]). `scratch` may
    /// be sized for a larger batch.
    pub fn decode_step_multi(
        &self,
        store: &ParamStore,
        h: &mut [f32],
        caches: &mut [&mut AttnKvCache],
        scratch: &mut DecodeScratch,
    ) {
        let d = self.attn.d_model;
        let n = caches.len();
        assert_eq!(h.len(), n * d, "multi decode residual size");
        let nd = n * d;
        let nm = n * self.fc1.out_dim;
        self.ln1.apply_rows_into(store, h, n, &mut scratch.norm[..nd]);
        self.attn.decode_step_multi(
            store,
            &scratch.norm[..nd],
            caches,
            &mut scratch.attn,
            &mut scratch.resid[..nd],
        );
        for (hv, av) in h.iter_mut().zip(&scratch.resid[..nd]) {
            *hv += av;
        }
        self.ln2.apply_rows_into(store, h, n, &mut scratch.norm[..nd]);
        self.fc1.apply_rows_into(store, &scratch.norm[..nd], n, &mut scratch.mlp[..nm]);
        for v in &mut scratch.mlp[..nm] {
            *v = gelu_scalar(*v);
        }
        self.fc2.apply_rows_into(store, &scratch.mlp[..nm], n, &mut scratch.resid[..nd]);
        for (hv, mv) in h.iter_mut().zip(&scratch.resid[..nd]) {
            *hv += mv;
        }
    }

    /// Snapshots the block's weights as int8 per-channel quantized copies
    /// for the flagged serve-time batched decode path (LayerNorms stay in
    /// f32 — their parameters are tiny and normalization is
    /// precision-sensitive).
    pub fn quantize(&self, store: &ParamStore) -> QuantBlock {
        QuantBlock {
            ln1: self.ln1.clone(),
            ln2: self.ln2.clone(),
            attn: self.attn.quantize(store),
            fc1: self.fc1.quantize(store),
            fc2: self.fc2.quantize(store),
        }
    }
}

// ---------------------------------------------------------------------------
// int8 per-channel quantized decode layers (serve-time `--quantized` path).
//
// Each Quant* type is an immutable snapshot of its f32 layer: weights are
// quantized once into the same NR-panel layout the f32 kernel packs
// (`QuantizedMatrix`), biases and LayerNorm parameters stay f32. The decode
// step structure — scatter, softmax, residuals — is byte-for-byte the same
// code path as the f32 multi decode; only the GEMM kernel differs. No
// bit-identity claim is made for this path (accuracy contract: per-weight
// rounding error ≤ scale/2, tested in cpt-gpt against the f32 oracle).
// ---------------------------------------------------------------------------

/// [`Linear`] with int8 per-output-channel weights and an f32 bias, applied
/// through [`crate::tensor::matmul_quant_into`].
#[derive(Debug, Clone)]
pub struct QuantLinear {
    w: crate::tensor::QuantizedMatrix,
    bias: Option<Vec<f32>>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Snapshots this layer's weights as an int8 per-channel quantized
    /// copy (bias kept in f32).
    pub fn quantize(&self, store: &ParamStore) -> QuantLinear {
        let w = store.value(self.w);
        QuantLinear {
            w: crate::tensor::QuantizedMatrix::quantize(&w.data, self.in_dim, self.out_dim),
            bias: self.b.map(|b| store.value(b).data.clone()),
            in_dim: self.in_dim,
            out_dim: self.out_dim,
        }
    }
}

impl QuantLinear {
    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// [`Linear::apply_rows_into`] through the quantized kernel (no store
    /// needed — weights and bias live in the snapshot).
    pub fn apply_rows_into(&self, x: &[f32], rows: usize, out: &mut [f32]) {
        assert_eq!(x.len(), rows * self.in_dim, "QuantLinear input size");
        assert_eq!(out.len(), rows * self.out_dim, "QuantLinear output size");
        crate::tensor::matmul_quant_into(x, &self.w, out, rows);
        if let Some(bias) = &self.bias {
            for row in out.chunks_mut(self.out_dim) {
                for (o, bv) in row.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        }
    }
}

/// Quantized snapshot of [`MultiHeadSelfAttention`] for cross-session
/// decode.
#[derive(Debug, Clone)]
pub struct QuantAttention {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
    n_heads: usize,
    d_model: usize,
}

impl MultiHeadSelfAttention {
    /// Snapshots the four projections as int8 quantized copies.
    pub fn quantize(&self, store: &ParamStore) -> QuantAttention {
        QuantAttention {
            wq: self.wq.quantize(store),
            wk: self.wk.quantize(store),
            wv: self.wv.quantize(store),
            wo: self.wo.quantize(store),
            n_heads: self.n_heads,
            d_model: self.d_model,
        }
    }
}

impl QuantAttention {
    /// [`MultiHeadSelfAttention::decode_step_multi`] with quantized
    /// projections; scatter and softmax are the shared f32 helpers.
    pub fn decode_step_multi(
        &self,
        x: &[f32],
        caches: &mut [&mut AttnKvCache],
        scratch: &mut AttnScratch,
        out: &mut [f32],
    ) {
        let h = self.n_heads;
        let hd = self.d_model / h;
        let n = caches.len();
        assert_eq!(x.len(), n * self.d_model, "multi decode input size");
        assert_eq!(out.len(), n * self.d_model, "multi decode output size");
        let nd = n * self.d_model;
        self.wq.apply_rows_into(x, n, &mut scratch.q[..nd]);
        self.wk.apply_rows_into(x, n, &mut scratch.k[..nd]);
        self.wv.apply_rows_into(x, n, &mut scratch.v[..nd]);
        scratch.ctx[..nd].fill(0.0);
        for (i, cache) in caches.iter_mut().enumerate() {
            let row = i * self.d_model;
            scatter_kv_one_session(cache, &scratch.k[row..row + self.d_model], &scratch.v[row..row + self.d_model], h, hd);
            attend_one_session(
                &scratch.q[row..row + self.d_model],
                cache,
                &mut scratch.scores,
                &mut scratch.ctx[row..row + self.d_model],
                h,
                hd,
            );
        }
        self.wo.apply_rows_into(&scratch.ctx[..nd], n, out);
    }
}

/// Quantized snapshot of [`TransformerBlock`] for cross-session decode.
#[derive(Debug, Clone)]
pub struct QuantBlock {
    ln1: LayerNorm,
    ln2: LayerNorm,
    attn: QuantAttention,
    fc1: QuantLinear,
    fc2: QuantLinear,
}

impl QuantBlock {
    /// [`TransformerBlock::decode_step_multi`] with quantized GEMMs.
    /// LayerNorm parameters are read from `store` (they are not
    /// quantized).
    pub fn decode_step_multi(
        &self,
        store: &ParamStore,
        h: &mut [f32],
        caches: &mut [&mut AttnKvCache],
        scratch: &mut DecodeScratch,
    ) {
        let d = self.attn.d_model;
        let n = caches.len();
        assert_eq!(h.len(), n * d, "multi decode residual size");
        let nd = n * d;
        let nm = n * self.fc1.out_dim;
        self.ln1.apply_rows_into(store, h, n, &mut scratch.norm[..nd]);
        self.attn
            .decode_step_multi(&scratch.norm[..nd], caches, &mut scratch.attn, &mut scratch.resid[..nd]);
        for (hv, av) in h.iter_mut().zip(&scratch.resid[..nd]) {
            *hv += av;
        }
        self.ln2.apply_rows_into(store, h, n, &mut scratch.norm[..nd]);
        self.fc1.apply_rows_into(&scratch.norm[..nd], n, &mut scratch.mlp[..nm]);
        for v in &mut scratch.mlp[..nm] {
            *v = gelu_scalar(*v);
        }
        self.fc2.apply_rows_into(&scratch.mlp[..nm], n, &mut scratch.resid[..nd]);
        for (hv, mv) in h.iter_mut().zip(&scratch.resid[..nd]) {
            *hv += mv;
        }
    }
}

/// GELU (tanh approximation) as a scalar function, shared by the graph op
/// and the inference fast path.
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Single-layer LSTM, the sequence model inside the NetShare baseline.
///
/// Gate order in the fused projections is `i, f, g, o`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    wx: Linear,
    wh: Linear,
    hidden: usize,
}

impl Lstm {
    /// Creates an LSTM with `in_dim` inputs and `hidden` units.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Lstm {
            wx: Linear::new(store, &format!("{name}.wx"), in_dim, 4 * hidden, true, rng),
            wh: Linear::new(store, &format!("{name}.wh"), hidden, 4 * hidden, false, rng),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero initial state `(h0, c0)` for batch size `b`.
    pub fn zero_state(&self, sess: &mut Session<'_>, b: usize) -> (Var, Var) {
        (
            sess.input(Tensor::zeros(&[b, self.hidden])),
            sess.input(Tensor::zeros(&[b, self.hidden])),
        )
    }

    /// One LSTM step: input `[B, in]`, state `[B, H]` each. Returns the new
    /// `(h, c)`.
    pub fn step(&self, sess: &mut Session<'_>, x: Var, h: Var, c: Var) -> (Var, Var) {
        let zx = self.wx.forward(sess, x);
        let zh = self.wh.forward(sess, h);
        let z = sess.graph.add(zx, zh); // [B, 4H]
        let hdim = self.hidden;
        let i = sess.graph.slice_cols(z, 0, hdim);
        let f = sess.graph.slice_cols(z, hdim, hdim);
        let gg = sess.graph.slice_cols(z, 2 * hdim, hdim);
        let o = sess.graph.slice_cols(z, 3 * hdim, hdim);
        let i = sess.graph.sigmoid(i);
        let f = sess.graph.sigmoid(f);
        let gg = sess.graph.tanh(gg);
        let o = sess.graph.sigmoid(o);
        let fc = sess.graph.mul(f, c);
        let ig = sess.graph.mul(i, gg);
        let c_new = sess.graph.add(fc, ig);
        let c_act = sess.graph.tanh(c_new);
        let h_new = sess.graph.mul(o, c_act);
        (h_new, c_new)
    }

    /// Runs the LSTM over a sequence of `[B, in]` inputs, returning the
    /// hidden state after each step.
    pub fn forward_seq(&self, sess: &mut Session<'_>, xs: &[Var], b: usize) -> Vec<Var> {
        let (mut h, mut c) = self.zero_state(sess, b);
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            let (nh, nc) = self.step(sess, *x, h, c);
            h = nh;
            c = nc;
            out.push(h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn param_store_registration() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(&[2, 3]));
        let b = store.add("b", Tensor::zeros(&[4]));
        assert_eq!(store.num_tensors(), 2);
        assert_eq!(store.num_params(), 10);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.value(b).shape, vec![4]);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(&[1]));
        store.add("a", Tensor::zeros(&[1]));
    }

    #[test]
    fn session_binds_param_once() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(&[2]));
        let mut sess = Session::new(&store);
        let v1 = sess.param(w);
        let v2 = sess.param(w);
        assert_eq!(v1, v2);
        // Gradient accumulates over both uses: y = w + w.
        let y = sess.graph.add(v1, v2);
        let loss = sess.graph.mean_all(y);
        sess.backward(loss);
        let grads = sess.grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1.data, vec![1.0, 1.0]); // d/dw mean(2w) = 2/2 each
    }

    #[test]
    fn linear_shapes_2d_and_3d() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, true, &mut rng(1));
        let mut sess = Session::new(&store);
        let x2 = sess.input(Tensor::ones(&[5, 4]));
        let y2 = lin.forward(&mut sess, x2);
        assert_eq!(sess.graph.value(y2).shape, vec![5, 3]);
        let x3 = sess.input(Tensor::ones(&[2, 7, 4]));
        let y3 = lin.forward(&mut sess, x3);
        assert_eq!(sess.graph.value(y3).shape, vec![2, 7, 3]);
    }

    #[test]
    fn attention_output_shape_and_causality() {
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, true, &mut rng(2));
        // Causality: the output at position 0 must not change when we
        // change the input at position 2.
        let mut x = Tensor::randn(&[1, 3, 8], 1.0, &mut rng(3));
        let out1 = {
            let mut sess = Session::new(&store);
            let xv = sess.input(x.clone());
            let y = attn.forward(&mut sess, xv);
            sess.graph.value(y).clone()
        };
        assert_eq!(out1.shape, vec![1, 3, 8]);
        for d in 16..24 {
            x.data[d] += 5.0; // perturb t=2
        }
        let out2 = {
            let mut sess = Session::new(&store);
            let xv = sess.input(x);
            let y = attn.forward(&mut sess, xv);
            sess.graph.value(y).clone()
        };
        for d in 0..8 {
            assert!(
                (out1.data[d] - out2.data[d]).abs() < 1e-6,
                "position 0 saw the future (d={d})"
            );
        }
        // Position 2 must change.
        let changed = (16..24).any(|d| (out1.data[d] - out2.data[d]).abs() > 1e-4);
        assert!(changed);
    }

    #[test]
    fn transformer_block_preserves_shape() {
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", 8, 2, 16, &mut rng(4));
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::randn(&[2, 5, 8], 1.0, &mut rng(5)));
        let y = block.forward(&mut sess, x);
        assert_eq!(sess.graph.value(y).shape, vec![2, 5, 8]);
    }

    #[test]
    fn lstm_step_shapes_and_state_evolution() {
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 3, 6, &mut rng(6));
        let mut sess = Session::new(&store);
        let xs: Vec<Var> = (0..4)
            .map(|i| sess.input(Tensor::full(&[2, 3], i as f32 * 0.1)))
            .collect();
        let hs = lstm.forward_seq(&mut sess, &xs, 2);
        assert_eq!(hs.len(), 4);
        for h in &hs {
            assert_eq!(sess.graph.value(*h).shape, vec![2, 6]);
        }
        // States must evolve (not be stuck at zero).
        assert!(sess.graph.value(hs[3]).sq_norm() > 0.0);
    }

    #[test]
    fn linear_can_learn_least_squares() {
        // End-to-end sanity: fit y = 2x + 1 with a 1→1 linear layer.
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 1, 1, true, &mut rng(7));
        let mut adam = Adam::new(&store, 0.05);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut sess = Session::new(&store);
            let x = sess.input(Tensor::new(xs.clone(), vec![16, 1]));
            let pred = lin.forward(&mut sess, x);
            let flat = sess.graph.reshape(pred, &[16]);
            let loss = sess.graph.mse_masked(flat, &ys, &[1.0; 16]);
            sess.backward(loss);
            last = sess.graph.value(loss).item();
            let grads = sess.grads();
            store.accumulate_grads(&grads);
            adam.step(&mut store);
            store.zero_grads();
        }
        assert!(last < 1e-3, "did not converge: loss {last}");
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let store = ParamStore::new();
        let mut sess = Session::new(&store);
        let x = sess.input(Tensor::ones(&[64, 64]));
        let y = sess.dropout(x, 0.5, &mut rng(30));
        let v = sess.graph.value(y).clone();
        let zeros = v.data.iter().filter(|e| **e == 0.0).count();
        let survivors: Vec<f32> = v.data.iter().copied().filter(|e| *e != 0.0).collect();
        // ~50% dropped, survivors scaled by 1/keep = 2.
        let frac = zeros as f64 / v.len() as f64;
        assert!((frac - 0.5).abs() < 0.06, "drop fraction {frac}");
        assert!(survivors.iter().all(|e| (*e - 2.0).abs() < 1e-6));
        // Expectation preserved: mean stays near 1.
        let mean = v.sum() / v.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        // Backward flows only through survivors.
        let loss = sess.graph.mean_all(y);
        sess.backward(loss);
        let g = sess.graph.grad(x).unwrap();
        let zero_grads = g.data.iter().filter(|e| **e == 0.0).count();
        assert_eq!(zero_grads, zeros);
        // p = 0 is the identity.
        let mut sess2 = Session::new(&store);
        let x2 = sess2.input(Tensor::ones(&[4]));
        let y2 = sess2.dropout(x2, 0.0, &mut rng(31));
        assert_eq!(x2, y2);
    }

    #[test]
    fn linear_and_layernorm_apply_match_graph_forward() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 5, 3, true, &mut rng(20));
        let ln = LayerNorm::new(&mut store, "n", 3);
        let x = Tensor::randn(&[4, 5], 1.0, &mut rng(21));
        let (graph_lin, graph_ln) = {
            let mut sess = Session::new(&store);
            let xv = sess.input(x.clone());
            let y = lin.forward(&mut sess, xv);
            let z = ln.forward(&mut sess, y);
            (sess.graph.value(y).clone(), sess.graph.value(z).clone())
        };
        let fast_lin = lin.apply(&store, &x);
        let fast_ln = ln.apply(&store, &fast_lin);
        for (a, b) in graph_lin.data.iter().zip(&fast_lin.data) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in graph_ln.data.iter().zip(&fast_ln.data) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn kv_cached_decode_matches_full_forward() {
        // The cached incremental path must produce the same per-position
        // outputs as the full causal forward pass.
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", 8, 2, 16, &mut rng(22));
        let t_max = 6;
        let x = Tensor::randn(&[2, t_max, 8], 0.8, &mut rng(23));

        let full = {
            let mut sess = Session::new(&store);
            let xv = sess.input(x.clone());
            let y = block.forward(&mut sess, xv);
            sess.graph.value(y).clone()
        };

        let mut cache = AttnKvCache::new(2, 2, t_max, 4);
        assert!(cache.is_empty());
        for t in 0..t_max {
            // Slice position t: [2,1,8].
            let mut step = Tensor::zeros(&[2, 1, 8]);
            for bi in 0..2 {
                step.data[bi * 8..(bi + 1) * 8]
                    .copy_from_slice(&x.data[(bi * t_max + t) * 8..(bi * t_max + t + 1) * 8]);
            }
            let out = block.apply_decode_step(&store, &step, &mut cache);
            assert_eq!(cache.len(), t + 1);
            for bi in 0..2 {
                for d in 0..8 {
                    let full_v = full.data[(bi * t_max + t) * 8 + d];
                    let step_v = out.data[bi * 8 + d];
                    assert!(
                        (full_v - step_v).abs() < 1e-4,
                        "mismatch at t={t} b={bi} d={d}: {full_v} vs {step_v}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_session_decode_bit_identical_to_sequential() {
        // Sessions at different prefix lengths decoded in one batch must
        // produce, per row, the exact bits of the b=1 sequential step —
        // both in the residual outputs and in the KV rows they scatter.
        let (d, heads, d_mlp, hd, max_len, n) = (8usize, 2usize, 16usize, 4usize, 10usize, 5usize);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", d, heads, d_mlp, &mut rng(40));
        let mut seq_caches: Vec<AttnKvCache> =
            (0..n).map(|_| AttnKvCache::new(1, heads, max_len, hd)).collect();
        let mut multi_caches: Vec<AttnKvCache> =
            (0..n).map(|_| AttnKvCache::new(1, heads, max_len, hd)).collect();
        let mut seq_scratch = DecodeScratch::new(1, d, d_mlp, max_len);
        let mut multi_scratch = DecodeScratch::new(n, d, d_mlp, max_len);
        let mut r = rng(41);
        // Advance session i by i tokens through the b=1 path on both cache
        // sets so the prefixes are bit-equal and lengths differ per session.
        for (i, (sc, mc)) in seq_caches.iter_mut().zip(&mut multi_caches).enumerate() {
            for _ in 0..i {
                let x = Tensor::randn(&[d], 0.5, &mut r);
                let mut h1 = x.data.clone();
                let mut h2 = x.data.clone();
                block.decode_step_into(&store, &mut h1, sc, &mut seq_scratch);
                block.decode_step_into(&store, &mut h2, mc, &mut seq_scratch);
            }
        }
        // One more token per session: sequential b=1 vs one multi batch.
        let step = Tensor::randn(&[n, d], 0.5, &mut r);
        let mut seq_out = step.data.clone();
        for (i, cache) in seq_caches.iter_mut().enumerate() {
            block.decode_step_into(
                &store,
                &mut seq_out[i * d..(i + 1) * d],
                cache,
                &mut seq_scratch,
            );
        }
        let mut multi_out = step.data.clone();
        let mut cache_refs: Vec<&mut AttnKvCache> = multi_caches.iter_mut().collect();
        block.decode_step_multi(&store, &mut multi_out, &mut cache_refs, &mut multi_scratch);
        for (i, (x, y)) in seq_out.iter().zip(&multi_out).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "residual row element {i}");
        }
        for (i, (sc, mc)) in seq_caches.iter().zip(&multi_caches).enumerate() {
            assert_eq!(sc.len, mc.len, "session {i} cache length");
            for (a, b) in sc.k.data.iter().zip(&mc.k.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "session {i} K rows");
            }
            for (a, b) in sc.v.data.iter().zip(&mc.v.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "session {i} V rows");
            }
        }
    }

    #[test]
    fn quant_block_decode_tracks_f32_multi_decode() {
        // The quantized block is not bit-identical, but on a
        // moderate-magnitude input it must stay close to the f32 path
        // (per-weight rounding ≤ scale/2).
        let (d, heads, d_mlp, hd, max_len, n) = (8usize, 2usize, 16usize, 4usize, 6usize, 3usize);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", d, heads, d_mlp, &mut rng(50));
        let qblock = block.quantize(&store);
        let mut f32_caches: Vec<AttnKvCache> =
            (0..n).map(|_| AttnKvCache::new(1, heads, max_len, hd)).collect();
        let mut q_caches: Vec<AttnKvCache> =
            (0..n).map(|_| AttnKvCache::new(1, heads, max_len, hd)).collect();
        let mut scratch = DecodeScratch::new(n, d, d_mlp, max_len);
        let mut r = rng(51);
        for _ in 0..max_len {
            let step = Tensor::randn(&[n, d], 0.5, &mut r);
            let mut hf = step.data.clone();
            let mut refs: Vec<&mut AttnKvCache> = f32_caches.iter_mut().collect();
            block.decode_step_multi(&store, &mut hf, &mut refs, &mut scratch);
            let mut hq = step.data.clone();
            let mut qrefs: Vec<&mut AttnKvCache> = q_caches.iter_mut().collect();
            qblock.decode_step_multi(&store, &mut hq, &mut qrefs, &mut scratch);
            for (a, b) in hf.iter().zip(&hq) {
                assert!(
                    (a - b).abs() < 0.15 * a.abs().max(1.0),
                    "quant drift too large: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_full_transformer_block() {
        // Finite-difference check through a whole block, treating the
        // input as the differentiated quantity.
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "b", 4, 2, 8, &mut rng(8));
        let x0 = Tensor::randn(&[1, 3, 4], 0.5, &mut rng(9));
        crate::gradcheck::check_gradients(
            &|g, ins| {
                // Manual session-like binding: parameters as constants.
                let mut sess = Session {
                    graph: std::mem::take(g),
                    store: &store,
                    bound: vec![None; store.params.len()],
                };
                let x = sess.input(ins[0].clone());
                let y = block.forward(&mut sess, x);
                let sq = sess.graph.mul(y, y);
                let loss = sess.graph.mean_all(sq);
                *g = std::mem::take(&mut sess.graph);
                (vec![x], loss)
            },
            &[x0],
            5e-3,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_lstm_step() {
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 2, 3, &mut rng(10));
        let x0 = Tensor::randn(&[2, 2], 0.5, &mut rng(11));
        crate::gradcheck::check_gradients(
            &|g, ins| {
                let mut sess = Session {
                    graph: std::mem::take(g),
                    store: &store,
                    bound: vec![None; store.params.len()],
                };
                let x = sess.input(ins[0].clone());
                let (h0, c0) = lstm.zero_state(&mut sess, 2);
                let (h1, c1) = lstm.step(&mut sess, x, h0, c0);
                let (h2, _) = lstm.step(&mut sess, x, h1, c1);
                let sq = sess.graph.mul(h2, h2);
                let loss = sess.graph.mean_all(sq);
                *g = std::mem::take(&mut sess.graph);
                (vec![x], loss)
            },
            &[x0],
            5e-3,
            3e-2,
        )
        .unwrap();
    }
}
