//! Optimizers, gradient clipping and learning-rate schedules.

use crate::layers::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam with decoupled weight decay (AdamW-style).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Base learning rate (can be replaced per step via
    /// [`Adam::set_lr`], e.g. by a schedule).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer sized to `store`.
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: store
                .ids()
                .iter()
                .map(|id| Tensor::zeros(&store.value(*id).shape))
                .collect(),
            v: store
                .ids()
                .iter()
                .map(|id| Tensor::zeros(&store.value(*id).shape))
                .collect(),
        }
    }

    /// Builder: sets weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Steps counted so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update using the gradients accumulated in `store`.
    /// Caller is responsible for zeroing gradients afterwards.
    pub fn step(&mut self, store: &mut ParamStore) {
        let all = store.ids();
        self.step_subset(store, &all);
    }

    /// Applies one update to `ids` only, leaving every other parameter —
    /// and its Adam moments — untouched. Required for GAN training, where
    /// the generator and discriminator live in one store but must be
    /// optimized on alternating steps.
    pub fn step_subset(&mut self, store: &mut ParamStore, ids: &[crate::layers::ParamId]) {
        assert_eq!(
            self.m.len(),
            store.num_tensors(),
            "optimizer sized for a different store"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in ids.iter().copied() {
            let idx = id.index();
            // Split borrows: clone the grad (small) to free the store.
            let grad = store.grad(id).clone();
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let value = store.value_mut(id);
            for i in 0..value.data.len() {
                let g = grad.data[i];
                m.data[i] = self.beta1 * m.data[i] + (1.0 - self.beta1) * g;
                v.data[i] = self.beta2 * v.data[i] + (1.0 - self.beta2) * g * g;
                let mhat = m.data[i] / bc1;
                let vhat = v.data[i] / bc2;
                let mut update = mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    update += self.weight_decay * value.data[i];
                }
                value.data[i] -= self.lr * update;
            }
        }
    }
}

/// SGD with classical momentum and decoupled weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer sized to `store`.
    pub fn new(store: &ParamStore, lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: store
                .ids()
                .iter()
                .map(|id| Tensor::zeros(&store.value(*id).shape))
                .collect(),
        }
    }

    /// Applies one update from the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        assert_eq!(
            self.velocity.len(),
            store.num_tensors(),
            "optimizer sized for a different store"
        );
        for (idx, id) in store.ids().into_iter().enumerate() {
            let grad = store.grad(id).clone();
            let v = &mut self.velocity[idx];
            let value = store.value_mut(id);
            for i in 0..value.data.len() {
                v.data[i] = self.momentum * v.data[i] + grad.data[i];
                let mut update = v.data[i];
                if self.weight_decay > 0.0 {
                    update += self.weight_decay * value.data[i];
                }
                value.data[i] -= self.lr * update;
            }
        }
    }
}

/// RMSProp — the optimizer the original WGAN paper recommends for
/// weight-clipped critics (momentum-based methods interact badly with the
/// clipping).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsProp {
    /// Learning rate.
    pub lr: f32,
    /// Squared-gradient decay.
    pub alpha: f32,
    /// Numerical epsilon.
    pub eps: f32,
    sq_avg: Vec<Tensor>,
}

impl RmsProp {
    /// Creates an RMSProp optimizer sized to `store`.
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        RmsProp {
            lr,
            alpha: 0.99,
            eps: 1e-8,
            sq_avg: store
                .ids()
                .iter()
                .map(|id| Tensor::zeros(&store.value(*id).shape))
                .collect(),
        }
    }

    /// Applies one update to `ids` only (GAN-style partitioned stepping).
    pub fn step_subset(&mut self, store: &mut ParamStore, ids: &[crate::layers::ParamId]) {
        assert_eq!(
            self.sq_avg.len(),
            store.num_tensors(),
            "optimizer sized for a different store"
        );
        for id in ids.iter().copied() {
            let idx = id.index();
            let grad = store.grad(id).clone();
            let s = &mut self.sq_avg[idx];
            let value = store.value_mut(id);
            for i in 0..value.data.len() {
                let g = grad.data[i];
                s.data[i] = self.alpha * s.data[i] + (1.0 - self.alpha) * g * g;
                value.data[i] -= self.lr * g / (s.data[i].sqrt() + self.eps);
            }
        }
    }

    /// Applies one update to every parameter.
    pub fn step(&mut self, store: &mut ParamStore) {
        let all = store.ids();
        self.step_subset(store, &all);
    }
}

/// Scales all gradients in `store` so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f64) -> f64 {
    let mut sq = 0.0f64;
    for id in store.ids() {
        sq += store.grad(id).sq_norm();
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = (max_norm / norm) as f32;
        for p in &mut store.params {
            p.grad.scale_assign(scale);
        }
    }
    norm
}

/// Learning-rate schedules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// Linear warmup to `peak` over `warmup_steps`, then cosine decay to
    /// `floor` at `total_steps`.
    WarmupCosine {
        /// Peak learning rate after warmup.
        peak: f32,
        /// Final learning rate.
        floor: f32,
        /// Warmup length in steps.
        warmup_steps: u64,
        /// Total schedule length in steps.
        total_steps: u64,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn lr(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::WarmupCosine {
                peak,
                floor,
                warmup_steps,
                total_steps,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    peak * (step + 1) as f32 / warmup_steps as f32
                } else if step >= total_steps {
                    floor
                } else {
                    let span = (total_steps - warmup_steps).max(1) as f32;
                    let progress = (step - warmup_steps) as f32 / span;
                    floor
                        + 0.5 * (peak - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Quadratic bowl: minimize ||w - target||² by writing the analytic
    /// gradient directly into the store.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::new(vec![5.0, -3.0], vec![2]));
        let target = [1.0f32, 2.0];
        let mut adam = Adam::new(&store, 0.1);
        for _ in 0..500 {
            let grads: Vec<f32> = store
                .value(id)
                .data
                .iter()
                .zip(&target)
                .map(|(w, t)| 2.0 * (w - t))
                .collect();
            store.zero_grads();
            store.accumulate_grads(&[(id, Tensor::new(grads, vec![2]))]);
            adam.step(&mut store);
        }
        for (w, t) in store.value(id).data.iter().zip(&target) {
            assert!((w - t).abs() < 1e-2, "w {w} vs target {t}");
        }
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_momentum_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::new(vec![5.0, -3.0], vec![2]));
        let target = [1.0f32, 2.0];
        let mut sgd = Sgd::new(&store, 0.05, 0.9);
        for _ in 0..300 {
            let grads: Vec<f32> = store
                .value(id)
                .data
                .iter()
                .zip(&target)
                .map(|(w, t)| 2.0 * (w - t))
                .collect();
            store.zero_grads();
            store.accumulate_grads(&[(id, Tensor::new(grads, vec![2]))]);
            sgd.step(&mut store);
        }
        for (w, t) in store.value(id).data.iter().zip(&target) {
            assert!((w - t).abs() < 1e-2, "w {w} vs target {t}");
        }
    }

    #[test]
    fn rmsprop_minimizes_quadratic_and_respects_subset() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::new(vec![4.0], vec![1]));
        let b = store.add("b", Tensor::new(vec![4.0], vec![1]));
        let mut rms = RmsProp::new(&store, 0.05);
        for _ in 0..400 {
            store.zero_grads();
            let ga = 2.0 * store.value(a).data[0];
            let gb = 2.0 * store.value(b).data[0];
            store.accumulate_grads(&[
                (a, Tensor::new(vec![ga], vec![1])),
                (b, Tensor::new(vec![gb], vec![1])),
            ]);
            rms.step_subset(&mut store, &[a]); // only a moves
        }
        assert!(store.value(a).data[0].abs() < 1e-2);
        assert_eq!(store.value(b).data[0], 4.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::new(vec![1.0], vec![1]));
        let mut adam = Adam::new(&store, 0.01).weight_decay(0.1);
        // Zero gradients: only decay acts.
        for _ in 0..100 {
            adam.step(&mut store);
        }
        assert!(store.value(id).data[0] < 1.0);
        assert!(store.value(id).data[0] > 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(&[2]));
        store.accumulate_grads(&[(a, Tensor::new(vec![3.0, 4.0], vec![2]))]);
        let norm = clip_grad_norm(&mut store, 1.0);
        assert!((norm - 5.0).abs() < 1e-9);
        let g = store.grad(a);
        let new_norm = g.sq_norm().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);

        // Below the cap: unchanged.
        store.zero_grads();
        store.accumulate_grads(&[(a, Tensor::new(vec![0.3, 0.4], vec![2]))]);
        let norm2 = clip_grad_norm(&mut store, 1.0);
        assert!((norm2 - 0.5).abs() < 1e-7);
        assert_eq!(store.grad(a).data, vec![0.3, 0.4]);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 0.1,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!(s.lr(0) < s.lr(5));
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
        assert!(s.lr(50) < 1.0 && s.lr(50) > 0.1);
        assert!((s.lr(1000) - 0.1).abs() < 1e-6);
        assert_eq!(LrSchedule::Constant(0.3).lr(12345), 0.3);
    }

    #[test]
    fn step_subset_leaves_other_params_untouched() {
        let mut store = ParamStore::new();
        let a = store.add("g.w", Tensor::new(vec![1.0], vec![1]));
        let b = store.add("d.w", Tensor::new(vec![1.0], vec![1]));
        let mut adam = Adam::new(&store, 0.1);
        // Gradients on both, but step only the "generator" parameter.
        store.accumulate_grads(&[
            (a, Tensor::ones(&[1])),
            (b, Tensor::ones(&[1])),
        ]);
        adam.step_subset(&mut store, &[a]);
        assert!(store.value(a).data[0] < 1.0, "a should move");
        assert_eq!(store.value(b).data[0], 1.0, "b must not move");
        // And b's Adam moments stayed zero: a later zero-grad subset step
        // on b leaves it in place.
        store.zero_grads();
        adam.step_subset(&mut store, &[b]);
        assert_eq!(store.value(b).data[0], 1.0);
    }

    #[test]
    fn adam_respects_lr_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::randn(&[4], 1.0, &mut rng));
        let before = store.value(id).clone();
        let mut adam = Adam::new(&store, 0.0);
        store.accumulate_grads(&[(id, Tensor::ones(&[4]))]);
        adam.step(&mut store);
        assert_eq!(store.value(id).data, before.data);
    }
}
