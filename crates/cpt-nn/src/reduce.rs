//! Fixed-order gradient reduction for data-parallel training.
//!
//! Data-parallel training shards a batch across workers; each worker runs
//! forward/backward on its shard and produces one gradient set (a
//! [`Session::grads`](crate::layers::Session::grads) result). Those shard
//! gradients must be summed into one set before the optimizer step — and
//! because float addition is not associative, the *order* of that sum is
//! part of the numerical result. [`tree_reduce_grads`] therefore combines
//! shards in a fixed pairwise tree whose shape depends only on the number
//! of shards and their indices — never on thread scheduling — so a given
//! shard list reduces to bit-identical gradients whether the forward passes
//! ran on 1 thread or 16.
//!
//! The tree pairs adjacent shards each round (`0+1, 2+3, …`; an odd tail
//! passes through unchanged), halving the list until one set remains. Each
//! round's pair-merges are independent, so they may run in parallel without
//! affecting the result: parallelism changes *when* a pair is merged, not
//! *which* operands it sees.

use crate::layers::ParamId;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// One worker's gradients: the output of
/// [`Session::grads`](crate::layers::Session::grads), ordered by ascending
/// [`ParamId`].
pub type GradSet = Vec<(ParamId, Tensor)>;

/// Scales every gradient in `grads` by `c` in place. Used to weight a
/// shard's contribution (e.g. by its share of the batch's loss mask)
/// before reduction.
pub fn scale_grads(grads: &mut GradSet, c: f32) {
    for (_, g) in grads.iter_mut() {
        g.scale_assign(c);
    }
}

/// Sums shard gradient sets with a fixed pairwise reduction tree.
///
/// The reduction order is a pure function of shard count: round 1 merges
/// `(0,1), (2,3), …`, round 2 merges the survivors pairwise again, and so
/// on. Each round's merges run in parallel (they touch disjoint pairs), but
/// since the pairing is by index the floating-point result is invariant to
/// the executing thread pool. An empty input yields an empty set.
pub fn tree_reduce_grads(mut shards: Vec<GradSet>) -> GradSet {
    while shards.len() > 1 {
        shards = shards
            .par_chunks_mut(2)
            .map(|pair| {
                if pair.len() == 2 {
                    let right = std::mem::take(&mut pair[1]);
                    merge_into(std::mem::take(&mut pair[0]), right)
                } else {
                    std::mem::take(&mut pair[0])
                }
            })
            .collect();
    }
    shards.pop().unwrap_or_default()
}

/// Merges `b` into `a` (`a += b`), returning `a`.
///
/// All shards of one model bind the same parameters in the same order, so
/// the fast path — identical id sequences — is the norm; the fallback
/// merges by id and re-sorts so partially overlapping sets still reduce
/// deterministically.
fn merge_into(mut a: GradSet, b: GradSet) -> GradSet {
    let aligned = a.len() == b.len() && a.iter().zip(&b).all(|((ia, _), (ib, _))| ia == ib);
    if aligned {
        for ((_, ga), (_, gb)) in a.iter_mut().zip(&b) {
            ga.add_assign(gb);
        }
        return a;
    }
    for (id, g) in b {
        match a.iter_mut().find(|(ia, _)| *ia == id) {
            Some((_, ga)) => ga.add_assign(&g),
            None => a.push((id, g)),
        }
    }
    a.sort_by_key(|(id, _)| id.index());
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(vals: &[f32]) -> GradSet {
        vals.iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), Tensor::full(&[2, 2], *v)))
            .collect()
    }

    #[test]
    fn reduces_like_fixed_order_sum() {
        // 5 shards (odd count exercises the pass-through tail).
        let shards: Vec<GradSet> = (0..5).map(|s| shard(&[s as f32, 10.0 + s as f32])).collect();
        let out = tree_reduce_grads(shards);
        assert_eq!(out.len(), 2);
        // ((0+1)+(2+3))+4 = 10 for param 0; ((10+11)+(12+13))+14 = 60 for 1.
        assert_eq!(out[0].1.data, vec![10.0; 4]);
        assert_eq!(out[1].1.data, vec![60.0; 4]);
    }

    #[test]
    fn bitwise_invariant_across_thread_pools() {
        // Values chosen so different summation orders give different bits:
        // adding a tiny term to a large accumulator loses different low
        // bits than pre-summing the tiny terms.
        let mk = || {
            (0..9)
                .map(|s| shard(&[1.0e8 + s as f32 * 0.1, 1.0e-7 * (s + 1) as f32]))
                .collect::<Vec<GradSet>>()
        };
        let mut results: Vec<Vec<Vec<u32>>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let out = pool.install(|| tree_reduce_grads(mk()));
            results.push(
                out.iter()
                    .map(|(_, g)| g.data.iter().map(|x| x.to_bits()).collect())
                    .collect(),
            );
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn merge_handles_disjoint_id_sets() {
        let a: GradSet = vec![(ParamId(0), Tensor::full(&[2], 1.0))];
        let b: GradSet = vec![
            (ParamId(0), Tensor::full(&[2], 2.0)),
            (ParamId(3), Tensor::full(&[2], 5.0)),
        ];
        let out = tree_reduce_grads(vec![a, b]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, ParamId(0));
        assert_eq!(out[0].1.data, vec![3.0, 3.0]);
        assert_eq!(out[1].0, ParamId(3));
        assert_eq!(out[1].1.data, vec![5.0, 5.0]);
    }

    #[test]
    fn scale_and_empty_edge_cases() {
        let mut g = shard(&[2.0]);
        scale_grads(&mut g, 0.5);
        assert_eq!(g[0].1.data, vec![1.0; 4]);
        assert!(tree_reduce_grads(Vec::new()).is_empty());
        let single = tree_reduce_grads(vec![shard(&[3.0])]);
        assert_eq!(single[0].1.data, vec![3.0; 4]);
    }
}
