//! Reusable scratch-buffer arena for per-batch graph allocations.
//!
//! Training builds a fresh tape every batch; without reuse, every node's
//! value, every backward intermediate and every gradient is a fresh heap
//! allocation. A [`ScratchArena`] is a shared pool of `Vec<f32>` buffers:
//! a [`crate::layers::Session`] created with
//! [`crate::layers::Session::with_scratch`] draws node storage from the
//! pool, and when the session's graph is dropped all node buffers return
//! to it. After the first batch the pool reaches steady state and the
//! forward/backward loop stops allocating.
//!
//! Buffers are handed out by value (ownership moves out of the pool), so
//! no borrow is held while tensor ops may run rayon work inside — a stolen
//! nested task simply pops its own buffer or allocates fresh.

use std::cell::RefCell;
use std::rc::Rc;

/// Upper bound on pooled buffers; beyond this, returned buffers are freed.
/// A training tape holds a few hundred nodes, so this is generous while
/// still bounding worst-case retention.
const MAX_POOLED: usize = 4096;

/// A shared pool of reusable `f32` buffers. Cloning shares the pool.
#[derive(Clone, Default)]
pub struct ScratchArena {
    pool: Rc<RefCell<Vec<Vec<f32>>>>,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Takes a zeroed buffer of exactly `len` elements, reusing pooled
    /// storage when available.
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let mut buf = self.pool.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool.
    pub fn give(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.pool.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }

    /// Number of buffers currently pooled (for tests/diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.borrow().len()
    }

    /// The calling thread's private arena.
    ///
    /// `ScratchArena` is deliberately `Rc`-based and not `Send`, so
    /// data-parallel workers cannot share one pool across a rayon
    /// dispatch. Each worker instead draws from a `thread_local!` arena
    /// that lives as long as its pool thread: the first step on a thread
    /// populates it, later steps reuse it. Arena contents never influence
    /// numerical results — buffers are re-zeroed on
    /// [`ScratchArena::take_zeroed`] — so which thread (and therefore
    /// which arena) serves a shard is irrelevant to determinism.
    pub fn for_current_thread() -> ScratchArena {
        thread_local! {
            static THREAD_ARENA: ScratchArena = ScratchArena::new();
        }
        THREAD_ARENA.with(|a| a.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers() {
        let arena = ScratchArena::new();
        let mut a = arena.take_zeroed(16);
        a[3] = 7.0;
        let cap = a.capacity();
        arena.give(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.take_zeroed(8);
        // Reused storage, re-zeroed.
        assert!(b.capacity() >= 8 && cap >= 8);
        assert!(b.iter().all(|x| *x == 0.0));
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn per_thread_arena_is_stable_within_a_thread() {
        let a = ScratchArena::for_current_thread();
        a.give(vec![0.0; 8]);
        // Same thread → same pool.
        assert_eq!(ScratchArena::for_current_thread().pooled(), a.pooled());
        // Another thread gets its own, initially empty pool.
        let other = std::thread::spawn(|| ScratchArena::for_current_thread().pooled())
            .join()
            .expect("thread");
        assert_eq!(other, 0);
    }

    #[test]
    fn clones_share_the_pool() {
        let arena = ScratchArena::new();
        let alias = arena.clone();
        alias.give(vec![0.0; 4]);
        assert_eq!(arena.pooled(), 1);
    }
}
