//! Minimal CPU deep-learning substrate.
//!
//! The paper implements CPT-GPT in PyTorch on an A100; no mature Rust ML
//! training stack exists in our allowed dependency set, so this crate
//! provides the pieces both CPT-GPT and the NetShare baseline need, from
//! scratch:
//!
//! - [`tensor::Tensor`] — dense row-major `f32` tensors with the handful of
//!   kernels training needs (matmul with rayon, batched matmul, transposes,
//!   reductions, elementwise maps);
//! - [`graph::Graph`] — reverse-mode automatic differentiation on a tape:
//!   each op records a backward closure; [`graph::Graph::backward`] walks
//!   the tape in reverse accumulating gradients;
//! - [`layers`] — `Linear`, `LayerNorm`, causal multi-head self-attention,
//!   `TransformerBlock` and an `Lstm`, all parameterized through a
//!   [`layers::ParamStore`] so weights persist across per-batch graphs;
//! - [`optim`] — Adam with decoupled weight decay, global-norm gradient
//!   clipping and warmup/constant schedules;
//! - losses as fused graph ops — softmax cross-entropy, Gaussian negative
//!   log-likelihood (the interarrival head of Design 2), binary
//!   cross-entropy (GAN), MSE;
//! - [`serialize`] — checkpoint save/load;
//! - [`gradcheck`] — finite-difference gradient verification used heavily
//!   by this crate's own tests.
//!
//! Design note: graphs are rebuilt per batch ("define-by-run"), which keeps
//! the API small and makes variable-length sequence models trivial. All
//! tensors are `f32`; accumulations inside kernels use `f32` too, which is
//! plenty for the model sizes used in the experiments (the paper's full
//! model is only 725 k parameters).

pub mod gradcheck;
pub mod graph;
pub mod layers;
pub mod optim;
pub mod reduce;
pub mod scratch;
pub mod serialize;
pub mod tensor;

pub use graph::{Graph, Var};
pub use reduce::{scale_grads, tree_reduce_grads, GradSet};
pub use scratch::ScratchArena;
pub use layers::{
    gelu_scalar, AttnKvCache, AttnScratch, DecodeScratch, Linear, LayerNorm, Lstm,
    MultiHeadSelfAttention, ParamId, ParamStore, QuantAttention, QuantBlock, QuantLinear,
    Session, TransformerBlock,
};
pub use optim::{clip_grad_norm, Adam, LrSchedule, RmsProp, Sgd};
pub use tensor::{matmul_quant_into, QuantizedMatrix, Tensor};
