//! Checkpoint save/load for [`ParamStore`]s.
//!
//! Checkpoints are JSON with explicit names and shapes so that transfer
//! learning (load a model trained on one hour, fine-tune on another — §4.4
//! Design 3) can verify architecture compatibility instead of silently
//! mis-assigning weights.

use crate::layers::ParamStore;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Errors arising from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The checkpoint's parameters do not match the target store.
    Mismatch(String),
    /// The checkpoint parsed but holds unusable weights: a tensor whose
    /// data length disagrees with its shape, or a non-finite value.
    /// Loading such a store would not fail immediately — it would train
    /// and generate garbage — so it is rejected at the door.
    Invalid(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Json(e) => write!(f, "checkpoint json error: {e}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::Invalid(m) => write!(f, "invalid checkpoint weights: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// Writes `store` to `w` as JSON.
pub fn save_store(store: &ParamStore, w: &mut impl Write) -> Result<(), CheckpointError> {
    serde_json::to_writer(w, store)?;
    Ok(())
}

/// Serializes `value` as JSON to `path` atomically: the bytes land in a
/// temp file in the same directory, are synced, and only then renamed over
/// `path`. A crash mid-write leaves either the old file or nothing at the
/// destination — never a half-written checkpoint. The temp file is cleaned
/// up on failure.
pub fn atomic_write_json<T: serde::Serialize>(
    value: &T,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    // Rename is only atomic within a filesystem, so the temp file must live
    // in the destination directory.
    let tmp: PathBuf = {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "checkpoint".into());
        name.push(format!(".tmp.{}", std::process::id()));
        path.with_file_name(name)
    };
    let write_result = (|| -> Result<(), CheckpointError> {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        serde_json::to_writer(&mut w, value)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(())
    })();
    if let Err(e) = write_result {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(CheckpointError::Io(e));
    }
    Ok(())
}

/// Writes `store` to a file atomically (temp file + rename).
pub fn save_store_to_path(
    store: &ParamStore,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    atomic_write_json(store, path)
}

/// Deterministic FNV-1a/64 checksum of a store's contents: every
/// parameter's name, shape, and exact f32 bit pattern, in registration
/// order. Two stores hash equal iff they are bit-identical, so the value
/// doubles as an integrity header for model artifacts: a truncated or
/// bit-flipped weight changes the checksum even when the JSON still
/// parses and every value stays finite.
pub fn store_checksum(store: &ParamStore) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for id in store.ids() {
        eat(store.name(id).as_bytes());
        let t = store.value(id);
        eat(&(t.shape.len() as u64).to_le_bytes());
        for &d in &t.shape {
            eat(&(d as u64).to_le_bytes());
        }
        eat(&(t.data.len() as u64).to_le_bytes());
        for &v in &t.data {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// Validates every tensor of `store`: the data length must equal the shape
/// product and every value must be finite. A store that fails this check
/// came from a corrupt/truncated file or a diverged run and must not be
/// loaded — NaN weights propagate through every forward pass silently.
pub fn validate_store(store: &ParamStore) -> Result<(), CheckpointError> {
    for id in store.ids() {
        let t = store.value(id);
        let expected: usize = t.shape.iter().product();
        if t.data.len() != expected {
            return Err(CheckpointError::Invalid(format!(
                "tensor {:?} has {} values but shape {:?} implies {expected}",
                store.name(id),
                t.data.len(),
                t.shape
            )));
        }
        if let Some(pos) = t.data.iter().position(|v| !v.is_finite()) {
            return Err(CheckpointError::Invalid(format!(
                "tensor {:?} has non-finite value {} at index {pos}",
                store.name(id),
                t.data[pos]
            )));
        }
    }
    Ok(())
}

/// Reads a full store from `r` (for loading a model whose architecture is
/// reconstructed from config), rejecting stores with non-finite or
/// mis-shaped weights.
pub fn load_store(r: &mut impl Read) -> Result<ParamStore, CheckpointError> {
    let store: ParamStore = serde_json::from_reader(r)?;
    validate_store(&store)?;
    Ok(store)
}

/// Reads a store from a file.
pub fn load_store_from_path(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    load_store(&mut r)
}

/// Copies the values of `source` into `target`, matching parameters by
/// name and verifying shapes. This is the transfer-learning entry point:
/// `target` is a freshly constructed model (so layer objects hold valid
/// [`crate::layers::ParamId`]s) and `source` provides pretrained weights.
pub fn load_weights_into(
    target: &mut ParamStore,
    source: &ParamStore,
) -> Result<(), CheckpointError> {
    validate_store(source)?;
    if target.num_tensors() != source.num_tensors() {
        return Err(CheckpointError::Mismatch(format!(
            "parameter count {} vs {}",
            target.num_tensors(),
            source.num_tensors()
        )));
    }
    for id in target.ids() {
        let name = target.name(id).to_owned();
        let src = source
            .params
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CheckpointError::Mismatch(format!("missing parameter {name:?}")))?;
        if src.value.shape != target.value(id).shape {
            return Err(CheckpointError::Mismatch(format!(
                "shape of {name:?}: {:?} vs {:?}",
                target.value(id).shape,
                src.value.shape
            )));
        }
        *target.value_mut(id) = src.value.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("layer.w", Tensor::new(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]));
        s.add("layer.b", Tensor::new(vec![0.5, -0.5], vec![2]));
        s
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store();
        let mut buf = Vec::new();
        save_store(&s, &mut buf).unwrap();
        let back = load_store(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_tensors(), 2);
        assert_eq!(back.value(back.ids()[0]).data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn file_roundtrip() {
        let s = store();
        let dir = std::env::temp_dir().join(format!("cpt-nn-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_store_to_path(&s, &path).unwrap();
        let back = load_store_from_path(&path).unwrap();
        assert_eq!(back.num_params(), s.num_params());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_weights_into_matches_by_name() {
        let mut target = ParamStore::new();
        // Register in a different order than the source.
        let b = target.add("layer.b", Tensor::zeros(&[2]));
        let w = target.add("layer.w", Tensor::zeros(&[2, 2]));
        load_weights_into(&mut target, &store()).unwrap();
        assert_eq!(target.value(w).data, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(target.value(b).data, vec![0.5, -0.5]);
    }

    #[test]
    fn load_weights_rejects_shape_mismatch() {
        let mut target = ParamStore::new();
        target.add("layer.w", Tensor::zeros(&[3, 2]));
        target.add("layer.b", Tensor::zeros(&[2]));
        assert!(matches!(
            load_weights_into(&mut target, &store()),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn atomic_write_leaves_no_temp_files_and_replaces_existing() {
        let s = store();
        let dir = std::env::temp_dir().join(format!("cpt-nn-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        std::fs::write(&path, b"stale previous checkpoint").unwrap();
        atomic_write_json(&s, &path).unwrap();
        let back = load_store_from_path(&path).unwrap();
        assert_eq!(back.num_params(), s.num_params());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_checksum_is_stable_and_sensitive() {
        let s = store();
        let a = store_checksum(&s);
        assert_eq!(a, store_checksum(&store()), "checksum must be deterministic");
        let mut flipped = store();
        let id = flipped.ids()[0];
        let bits = flipped.value(id).data[2].to_bits() ^ 1;
        flipped.value_mut(id).data[2] = f32::from_bits(bits);
        assert_ne!(a, store_checksum(&flipped), "single-bit flip must change checksum");
        let mut truncated = store();
        let id = truncated.ids()[0];
        truncated.value_mut(id).data.pop();
        assert_ne!(a, store_checksum(&truncated), "truncation must change checksum");
    }

    #[test]
    fn load_rejects_non_finite_weights() {
        let mut s = store();
        let id = s.ids()[0];
        s.value_mut(id).data[1] = f32::NAN;
        let mut buf = Vec::new();
        serde_json::to_writer(&mut buf, &s).unwrap();
        assert!(matches!(
            load_store(&mut buf.as_slice()),
            Err(CheckpointError::Invalid(_))
        ));
        let mut target = ParamStore::new();
        target.add("layer.w", Tensor::zeros(&[2, 2]));
        target.add("layer.b", Tensor::zeros(&[2]));
        assert!(matches!(
            load_weights_into(&mut target, &s),
            Err(CheckpointError::Invalid(_))
        ));
    }

    #[test]
    fn load_rejects_shape_data_disagreement() {
        let mut s = store();
        let id = s.ids()[0];
        // Truncate the data behind the shape's back, as a torn write would.
        s.value_mut(id).data.pop();
        let mut buf = Vec::new();
        serde_json::to_writer(&mut buf, &s).unwrap();
        assert!(matches!(
            load_store(&mut buf.as_slice()),
            Err(CheckpointError::Invalid(_))
        ));
    }

    #[test]
    fn load_weights_rejects_missing_name() {
        let mut target = ParamStore::new();
        target.add("other.w", Tensor::zeros(&[2, 2]));
        target.add("layer.b", Tensor::zeros(&[2]));
        assert!(matches!(
            load_weights_into(&mut target, &store()),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
