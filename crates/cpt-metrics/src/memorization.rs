//! n-gram memorization analysis (§5.6, Table 11).
//!
//! Two n-grams "repeat" if they have the same event-type sequence and
//! every corresponding pair of interarrival times falls within relative
//! tolerance ε: `(1−ε) < t_gen/t_real < (1+ε)`. We report the fraction of
//! generated n-grams with at least one repeat in the training set.

use cpt_trace::{Dataset, Stream};
use std::collections::HashMap;

/// One n-gram: event indices plus interarrival seconds.
fn ngrams(stream: &Stream, n: usize) -> Vec<(Vec<u8>, Vec<f64>)> {
    if stream.len() < n {
        return Vec::new();
    }
    let iats = stream.interarrivals();
    let types: Vec<u8> = stream
        .events
        .iter()
        .map(|e| e.event_type.index() as u8)
        .collect();
    (0..=stream.len() - n)
        .map(|i| (types[i..i + n].to_vec(), iats[i..i + n].to_vec()))
        .collect()
}

fn iats_match(gen: &[f64], real: &[f64], eps: f64) -> bool {
    gen.iter().zip(real).all(|(g, r)| {
        if *r <= 1e-9 {
            // Ratio undefined at zero: only a zero matches a zero.
            *g <= 1e-9
        } else {
            let ratio = g / r;
            ratio > 1.0 - eps && ratio < 1.0 + eps
        }
    })
}

/// Fraction of `n`-grams in `generated` that repeat (within tolerance
/// `eps`) from `training`. Returns 0 when `generated` contains no
/// n-grams of length `n`.
pub fn ngram_repeat_fraction(
    generated: &Dataset,
    training: &Dataset,
    n: usize,
    eps: f64,
) -> f64 {
    assert!(n >= 1, "n must be >= 1");
    assert!((0.0..1.0).contains(&eps), "eps must be in [0, 1)");
    // Index the training n-grams by event-type sequence.
    let mut index: HashMap<Vec<u8>, Vec<Vec<f64>>> = HashMap::new();
    for s in &training.streams {
        for (key, iats) in ngrams(s, n) {
            index.entry(key).or_default().push(iats);
        }
    }
    let mut total = 0usize;
    let mut repeats = 0usize;
    for s in &generated.streams {
        for (key, gen_iats) in ngrams(s, n) {
            total += 1;
            if let Some(candidates) = index.get(&key) {
                if candidates.iter().any(|real| iats_match(&gen_iats, real, eps)) {
                    repeats += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        repeats as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};

    fn stream(id: u64, gaps: &[f64]) -> Stream {
        let mut t = 0.0;
        let events = gaps
            .iter()
            .enumerate()
            .map(|(i, g)| {
                t += g;
                let et = if i % 2 == 0 {
                    EventType::ServiceRequest
                } else {
                    EventType::ConnectionRelease
                };
                Event::new(et, t)
            })
            .collect();
        Stream::new(UeId(id), DeviceType::Phone, events)
    }

    #[test]
    fn exact_copy_repeats_fully() {
        let train = Dataset::new(vec![stream(0, &[0.0, 5.0, 30.0, 5.0, 30.0])]);
        let gen = train.clone();
        assert_eq!(ngram_repeat_fraction(&gen, &train, 3, 0.1), 1.0);
    }

    #[test]
    fn different_event_sequence_never_repeats() {
        let train = Dataset::new(vec![stream(0, &[0.0, 5.0, 30.0])]);
        // All-HO stream: no event-sequence match.
        let gen = Dataset::new(vec![Stream::new(
            UeId(9),
            DeviceType::Phone,
            vec![
                Event::new(EventType::Handover, 0.0),
                Event::new(EventType::Handover, 5.0),
                Event::new(EventType::Handover, 35.0),
            ],
        )]);
        assert_eq!(ngram_repeat_fraction(&gen, &train, 3, 0.5), 0.0);
    }

    #[test]
    fn tolerance_widens_matches() {
        let train = Dataset::new(vec![stream(0, &[0.0, 10.0, 100.0])]);
        // Same event pattern with interarrivals 15 % off.
        let gen = Dataset::new(vec![stream(1, &[0.0, 11.5, 115.0])]);
        assert_eq!(ngram_repeat_fraction(&gen, &train, 3, 0.10), 0.0);
        assert_eq!(ngram_repeat_fraction(&gen, &train, 3, 0.20), 1.0);
    }

    #[test]
    fn zero_iat_only_matches_zero() {
        let train = Dataset::new(vec![stream(0, &[0.0, 10.0])]);
        let gen_zero = Dataset::new(vec![stream(1, &[0.0, 10.0])]);
        let gen_nonzero = {
            // Same event types, but first interarrival nonzero (window cut).
            let mut d = Dataset::new(vec![stream(2, &[0.0, 10.0])]);
            d.streams[0] = Stream::from_interarrivals(
                UeId(2),
                DeviceType::Phone,
                &[EventType::ServiceRequest, EventType::ConnectionRelease],
                &[5.0, 10.0],
            );
            d
        };
        // n-gram of length 2 includes the leading 0 interarrival.
        assert_eq!(ngram_repeat_fraction(&gen_zero, &train, 2, 0.1), 1.0);
        // from_interarrivals sets absolute offsets; interarrivals() returns
        // [0, 10] again, so force mismatch via windowing semantics instead:
        // a 2-gram starting at event 1 does not exist in a 2-event stream,
        // so compare with n=1-style logic is unnecessary — assert the
        // helper directly.
        assert!(iats_match(&[0.0, 10.0], &[0.0, 10.0], 0.1));
        assert!(!iats_match(&[5.0, 10.0], &[0.0, 10.0], 0.1));
        let _ = gen_nonzero;
    }

    #[test]
    fn longer_n_reduces_repeats() {
        // Training has the pair (5, 30) everywhere; generated shares short
        // patterns but diverges over longer windows.
        let train = Dataset::new(vec![stream(0, &[0.0, 5.0, 30.0, 5.0, 30.0, 5.0])]);
        let gen = Dataset::new(vec![stream(1, &[0.0, 5.0, 30.0, 500.0, 30.0, 5.0])]);
        let short = ngram_repeat_fraction(&gen, &train, 2, 0.1);
        let long = ngram_repeat_fraction(&gen, &train, 5, 0.1);
        assert!(short > long, "short {short} vs long {long}");
        assert_eq!(long, 0.0);
    }

    #[test]
    fn empty_generated_is_zero() {
        let train = Dataset::new(vec![stream(0, &[0.0, 5.0])]);
        let gen = Dataset::new(vec![]);
        assert_eq!(ngram_repeat_fraction(&gen, &train, 2, 0.1), 0.0);
    }
}
