//! Semantic-violation statistics (§5.2.1, Tables 3 and 5).

use cpt_statemachine::{replay, StateMachine, Violation};
use cpt_trace::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregated violation counts over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ViolationStats {
    /// Events checked (events after each stream's bootstrap event).
    pub events_checked: usize,
    /// Events that violated a state transition.
    pub violating_events: usize,
    /// Streams that could be bootstrapped and checked.
    pub streams_checked: usize,
    /// Streams containing at least one violating event.
    pub violating_streams: usize,
    /// Violation (state, event) pairs with counts, most frequent first —
    /// the "top-3 violations" rows of Table 3.
    pub by_kind: Vec<(Violation, usize)>,
}

impl ViolationStats {
    /// Fraction of checked events that violate (Table 5 row 1).
    pub fn event_rate(&self) -> f64 {
        if self.events_checked == 0 {
            0.0
        } else {
            self.violating_events as f64 / self.events_checked as f64
        }
    }

    /// Fraction of checked streams with ≥ 1 violation (Table 5 row 2).
    pub fn stream_rate(&self) -> f64 {
        if self.streams_checked == 0 {
            0.0
        } else {
            self.violating_streams as f64 / self.streams_checked as f64
        }
    }

    /// The `n` most frequent violation kinds, as a fraction of checked
    /// events (the Table 3 breakdown).
    pub fn top(&self, n: usize) -> Vec<(Violation, f64)> {
        self.by_kind
            .iter()
            .take(n)
            .map(|(v, c)| (*v, *c as f64 / self.events_checked.max(1) as f64))
            .collect()
    }
}

/// Replays every stream of `dataset` and aggregates violation statistics.
pub fn violation_stats(machine: &StateMachine, dataset: &Dataset) -> ViolationStats {
    let mut stats = ViolationStats::default();
    let mut kinds: HashMap<Violation, usize> = HashMap::new();
    for stream in &dataset.streams {
        let outcome = replay(machine, stream);
        if !outcome.bootstrapped {
            continue;
        }
        stats.streams_checked += 1;
        stats.events_checked += outcome.events_checked;
        if outcome.has_violation() {
            stats.violating_streams += 1;
        }
        stats.violating_events += outcome.violations.len();
        for v in outcome.violations {
            *kinds.entry(v).or_insert(0) += 1;
        }
    }
    let mut by_kind: Vec<(Violation, usize)> = kinds.into_iter().collect();
    by_kind.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| format!("{}", a.0).cmp(&format!("{}", b.0))));
    stats.by_kind = by_kind;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};

    fn stream(id: u64, evs: &[(EventType, f64)]) -> Stream {
        Stream::new(
            UeId(id),
            DeviceType::Phone,
            evs.iter().map(|(e, t)| Event::new(*e, *t)).collect(),
        )
    }

    #[test]
    fn clean_dataset_has_zero_rates() {
        let d = Dataset::new(vec![stream(
            0,
            &[
                (EventType::ServiceRequest, 0.0),
                (EventType::ConnectionRelease, 5.0),
                (EventType::ServiceRequest, 60.0),
            ],
        )]);
        let s = violation_stats(&StateMachine::lte(), &d);
        assert_eq!(s.event_rate(), 0.0);
        assert_eq!(s.stream_rate(), 0.0);
        assert_eq!(s.events_checked, 2);
        assert_eq!(s.streams_checked, 1);
    }

    #[test]
    fn counts_violations_and_ranks_kinds() {
        // Two streams; one with a double-release (IDLE, S1_CONN_REL)
        // twice, the other with (CONNECTED, SRV_REQ) once.
        let d = Dataset::new(vec![
            stream(
                0,
                &[
                    (EventType::ServiceRequest, 0.0),
                    (EventType::ConnectionRelease, 1.0),
                    (EventType::ConnectionRelease, 2.0),
                    (EventType::ConnectionRelease, 3.0),
                ],
            ),
            stream(
                1,
                &[
                    (EventType::ServiceRequest, 0.0),
                    (EventType::ServiceRequest, 1.0),
                    (EventType::ConnectionRelease, 2.0),
                ],
            ),
            stream(
                2,
                &[
                    (EventType::ServiceRequest, 0.0),
                    (EventType::ConnectionRelease, 5.0),
                ],
            ),
        ]);
        let s = violation_stats(&StateMachine::lte(), &d);
        assert_eq!(s.streams_checked, 3);
        assert_eq!(s.violating_streams, 2);
        assert_eq!(s.violating_events, 3);
        assert_eq!(s.events_checked, 3 + 2 + 1);
        assert!((s.stream_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.event_rate() - 0.5).abs() < 1e-12);
        // Double-release is the most frequent kind.
        let top = s.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0.event, EventType::ConnectionRelease);
        assert_eq!(top[0].1, 2.0 / 6.0);
        assert_eq!(top[1].0.event, EventType::ServiceRequest);
    }

    #[test]
    fn unbootstrappable_streams_are_skipped() {
        let d = Dataset::new(vec![stream(
            0,
            &[
                (EventType::ConnectionRelease, 0.0),
                (EventType::TrackingAreaUpdate, 1.0),
            ],
        )]);
        let s = violation_stats(&StateMachine::lte(), &d);
        assert_eq!(s.streams_checked, 0);
        assert_eq!(s.event_rate(), 0.0);
    }
}
