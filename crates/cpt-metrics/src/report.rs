//! Plain-text table rendering for the experiment harness.
//!
//! The experiment binaries print tables shaped like the paper's so that
//! paper-vs-measured comparison is a visual diff. Cells are strings; the
//! renderer right-pads columns to align.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table (e.g. "Table 5: ...").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Body rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout with a trailing blank line.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with `digits` decimals
/// (e.g. `0.221 → "22.1%"`).
pub fn pct(x: f64, digits: usize) -> String {
    format!("{:.*}%", digits, x * 100.0)
}

/// Formats a signed fraction as percentage points (Table 7 style).
pub fn pct_signed(x: f64, digits: usize) -> String {
    format!("{:+.*}%", digits, x * 100.0)
}

/// Formats seconds as minutes with two decimals (Tables 4/9 style).
pub fn minutes(seconds: f64) -> String {
    format!("{:.2} min", seconds / 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Table X: demo", &["metric", "value"]);
        t.row(&["violations".into(), "0.2%".into()]);
        t.row(&["max y".into(), "6.4%".into()]);
        let s = t.render();
        assert!(s.contains("Table X: demo"));
        assert!(s.contains("| metric     | value |"));
        assert!(s.contains("| violations | 0.2%  |"));
        // 4 lines: title + header + sep + 2 rows.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_wrong_row_width() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.221, 1), "22.1%");
        assert_eq!(pct_signed(-0.005, 2), "-0.50%");
        assert_eq!(pct_signed(0.0066, 2), "+0.66%");
        assert_eq!(minutes(90.0), "1.50 min");
    }
}
