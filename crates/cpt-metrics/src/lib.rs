//! Fidelity metrics for synthesized control-plane traffic — the
//! implementation of Table 2 of the paper.
//!
//! | Metric | Module | Evaluates |
//! |---|---|---|
//! | Semantic violations | [`violations`] | C2 (stateful semantics) |
//! | Sojourn time distribution | [`sojourn`] | C3 (multimodal features) |
//! | Event type breakdown | [`breakdown`] | C3 |
//! | Flow length distribution | [`flowlen`] | C4 (variable flow length) |
//! | Adaptability to drift | measured by the experiment harness (wall-clock) | C5 |
//!
//! Additionally [`memorization`] implements the §5.6 n-gram memorization
//! analysis, [`selection`] the §5.5 checkpoint-selection heuristic used to
//! compare training times fairly, and [`report`] the plain-text table
//! rendering used by the experiment binaries.

pub mod breakdown;
pub mod flowlen;
pub mod memorization;
pub mod report;
pub mod selection;
pub mod sojourn;
pub mod streaming;
pub mod violations;

pub use breakdown::{breakdown_diffs, max_abs_breakdown_diff};
pub use flowlen::{flow_length_distance, FlowLenKind};
pub use memorization::ngram_repeat_fraction;
pub use report::Table;
pub use selection::select_checkpoint;
pub use sojourn::{per_ue_mean_sojourns, sojourn_distance};
pub use streaming::{accumulate_reader, fidelity_from_accumulators, StreamAccumulator};
pub use violations::{violation_stats, ViolationStats};

use cpt_statemachine::{StateMachine, TopState};
use cpt_trace::Dataset;
use serde::{Deserialize, Serialize};

/// Everything the paper's evaluation computes for one (real, synthesized)
/// dataset pair, in one call. Used by the experiment harness for Tables
/// 5–8, 10 and Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Fraction of checked events that violate the state machine.
    pub event_violation_rate: f64,
    /// Fraction of checked streams with ≥ 1 violating event.
    pub stream_violation_rate: f64,
    /// Max y-distance of per-UE mean CONNECTED sojourn CDFs.
    pub sojourn_connected: f64,
    /// Max y-distance of per-UE mean IDLE sojourn CDFs.
    pub sojourn_idle: f64,
    /// Max y-distance of flow-length CDFs over all events.
    pub flow_length_all: f64,
    /// Max y-distance of per-stream SRV_REQ count CDFs.
    pub flow_length_srv_req: f64,
    /// Max y-distance of per-stream S1_CONN_REL count CDFs.
    pub flow_length_conn_rel: f64,
    /// Largest absolute event-type breakdown difference.
    pub max_breakdown_diff: f64,
}

impl FidelityReport {
    /// Computes the full report for `synth` against `real`.
    pub fn compute(machine: &StateMachine, real: &Dataset, synth: &Dataset) -> Self {
        let v = violation_stats(machine, synth);
        FidelityReport {
            event_violation_rate: v.event_rate(),
            stream_violation_rate: v.stream_rate(),
            sojourn_connected: sojourn_distance(machine, real, synth, TopState::Connected),
            sojourn_idle: sojourn_distance(machine, real, synth, TopState::Idle),
            flow_length_all: flow_length_distance(real, synth, FlowLenKind::All),
            flow_length_srv_req: flow_length_distance(
                real,
                synth,
                FlowLenKind::OfType(cpt_trace::EventType::ServiceRequest),
            ),
            flow_length_conn_rel: flow_length_distance(
                real,
                synth,
                FlowLenKind::OfType(cpt_trace::EventType::ConnectionRelease),
            ),
            max_breakdown_diff: max_abs_breakdown_diff(real, synth),
        }
    }

    /// The metric vector used by the §5.5 checkpoint-ranking heuristic
    /// (all entries: lower is better).
    pub fn metric_vector(&self) -> Vec<f64> {
        vec![
            self.event_violation_rate,
            self.stream_violation_rate,
            self.sojourn_connected,
            self.sojourn_idle,
            self.flow_length_all,
            self.max_breakdown_diff,
        ]
    }
}
