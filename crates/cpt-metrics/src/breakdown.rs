//! Event-type breakdown differences (Table 7).
//!
//! Table 7 reports, per event type, the synthesized dataset's share minus
//! the real dataset's share (percentage points; lower magnitude = better).

use cpt_trace::{Dataset, EventType};
use std::collections::BTreeMap;

/// Per-type breakdown difference `synth − real` (fractions, not
/// percentage points).
pub fn breakdown_diffs(real: &Dataset, synth: &Dataset) -> BTreeMap<EventType, f64> {
    let r = real.event_breakdown();
    let s = synth.event_breakdown();
    EventType::ALL
        .iter()
        .map(|et| (*et, s.get(et).copied().unwrap_or(0.0) - r.get(et).copied().unwrap_or(0.0)))
        .collect()
}

/// Largest absolute breakdown difference over all event types — the
/// summary number quoted in §5.2.2 ("within 0.66 %, 2.15 %, and 3.62 %").
pub fn max_abs_breakdown_diff(real: &Dataset, synth: &Dataset) -> f64 {
    breakdown_diffs(real, synth)
        .values()
        .fold(0.0f64, |m, d| m.max(d.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, Stream, UeId};

    fn dataset(events: &[EventType]) -> Dataset {
        Dataset::new(vec![Stream::new(
            UeId(0),
            DeviceType::Phone,
            events
                .iter()
                .enumerate()
                .map(|(i, e)| Event::new(*e, i as f64))
                .collect(),
        )])
    }

    #[test]
    fn diffs_are_signed_and_cover_all_types() {
        use EventType::*;
        let real = dataset(&[ServiceRequest, ServiceRequest, ConnectionRelease, Handover]);
        let synth = dataset(&[ServiceRequest, ConnectionRelease, ConnectionRelease, Handover]);
        let d = breakdown_diffs(&real, &synth);
        assert_eq!(d.len(), 6);
        assert!((d[&ServiceRequest] - (0.25 - 0.5)).abs() < 1e-12);
        assert!((d[&ConnectionRelease] - (0.5 - 0.25)).abs() < 1e-12);
        assert_eq!(d[&Handover], 0.0);
        assert_eq!(d[&Attach], 0.0);
        assert!((max_abs_breakdown_diff(&real, &synth) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_datasets_have_zero_diff() {
        use EventType::*;
        let d = dataset(&[ServiceRequest, ConnectionRelease]);
        assert_eq!(max_abs_breakdown_diff(&d, &d), 0.0);
    }
}
