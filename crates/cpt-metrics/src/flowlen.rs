//! Flow-length distributions (Table 6 / Fig. 5 middle and right columns).

use cpt_trace::stats::Ecdf;
use cpt_trace::{Dataset, EventType};

/// Which flow-length variant to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowLenKind {
    /// Events per stream across all event types.
    All,
    /// Events of a single type per stream (the paper highlights SRV_REQ
    /// and S1_CONN_REL, the two dominant types).
    OfType(EventType),
}

/// Per-stream flow lengths of the requested kind.
pub fn flow_lengths(dataset: &Dataset, kind: FlowLenKind) -> Vec<f64> {
    match kind {
        FlowLenKind::All => dataset.flow_lengths(),
        FlowLenKind::OfType(et) => dataset.flow_lengths_of(et),
    }
}

/// ECDF of flow lengths.
pub fn flow_length_ecdf(dataset: &Dataset, kind: FlowLenKind) -> Ecdf {
    Ecdf::new(flow_lengths(dataset, kind))
}

/// Max y-distance between real and synthesized flow-length CDFs.
pub fn flow_length_distance(real: &Dataset, synth: &Dataset, kind: FlowLenKind) -> f64 {
    flow_length_ecdf(real, kind).max_y_distance(&flow_length_ecdf(synth, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, Stream, UeId};

    fn stream_of_len(id: u64, len: usize) -> Stream {
        Stream::new(
            UeId(id),
            DeviceType::Phone,
            (0..len)
                .map(|i| {
                    let et = if i % 2 == 0 {
                        EventType::ServiceRequest
                    } else {
                        EventType::ConnectionRelease
                    };
                    Event::new(et, i as f64)
                })
                .collect(),
        )
    }

    #[test]
    fn lengths_and_per_type_lengths() {
        let d = Dataset::new(vec![stream_of_len(0, 4), stream_of_len(1, 7)]);
        assert_eq!(flow_lengths(&d, FlowLenKind::All), vec![4.0, 7.0]);
        assert_eq!(
            flow_lengths(&d, FlowLenKind::OfType(EventType::ServiceRequest)),
            vec![2.0, 4.0]
        );
        assert_eq!(
            flow_lengths(&d, FlowLenKind::OfType(EventType::Handover)),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn distance_zero_for_same_lengths_one_for_disjoint() {
        let a = Dataset::new(vec![stream_of_len(0, 4), stream_of_len(1, 6)]);
        let b = Dataset::new(vec![stream_of_len(0, 6), stream_of_len(1, 4)]);
        assert_eq!(flow_length_distance(&a, &b, FlowLenKind::All), 0.0);
        let c = Dataset::new(vec![stream_of_len(0, 100), stream_of_len(1, 120)]);
        assert!((flow_length_distance(&a, &c, FlowLenKind::All) - 1.0).abs() < 1e-12);
    }
}
