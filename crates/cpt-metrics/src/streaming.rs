//! Single-pass streaming fidelity accumulation for out-of-core traces.
//!
//! [`FidelityReport::compute`](crate::FidelityReport::compute) walks its
//! datasets several times (once per metric) and therefore needs both
//! traces fully resident. [`StreamAccumulator`] folds every per-stream
//! quantity the report needs in **one replay per stream**, so a `.ctb`
//! columnar trace can be measured stream by stream without ever
//! materializing the dataset. Peak memory is O(streams) — the per-UE
//! flow lengths and mean sojourns that the ECDF distances are defined
//! over — never O(events).
//!
//! Equality guarantee (tested below): feeding every stream of a dataset,
//! in dataset order, produces bit-identical metric values to the batch
//! functions ([`violation_stats`], [`sojourn_ecdf`](crate::sojourn),
//! [`flow_length_ecdf`](crate::flowlen), `Dataset::event_breakdown`) —
//! the accumulators perform the same folds in the same order. The pooled
//! interarrival ECDF is deliberately *not* accumulated: it is O(events)
//! by definition and not part of [`FidelityReport`].

use crate::violations::ViolationStats;
use crate::FidelityReport;
use cpt_statemachine::{replay, StateMachine, TopState, Violation};
use cpt_trace::columnar::{ColumnarReader, CtbError};
use cpt_trace::stats::Ecdf;
use cpt_trace::{EventType, Stream};
use std::collections::{BTreeMap, HashMap};

/// Everything [`FidelityReport`] needs about one dataset, accumulated one
/// stream at a time.
#[derive(Debug, Clone, Default)]
pub struct StreamAccumulator {
    // Event-type breakdown.
    type_counts: [usize; EventType::ALL.len()],
    total_events: usize,
    // Flow lengths, in observation order (matches dataset stream order).
    flow_all: Vec<f64>,
    flow_srv_req: Vec<f64>,
    flow_conn_rel: Vec<f64>,
    // Per-UE mean sojourns, skipping UEs with no completed visit.
    sojourn_connected: Vec<f64>,
    sojourn_idle: Vec<f64>,
    sojourn_deregistered: Vec<f64>,
    // Violation accumulation (identical folds to `violation_stats`).
    events_checked: usize,
    violating_events: usize,
    streams_checked: usize,
    violating_streams: usize,
    kinds: HashMap<Violation, usize>,
}

impl StreamAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamAccumulator::default()
    }

    /// Number of streams observed so far.
    pub fn streams_observed(&self) -> usize {
        self.flow_all.len()
    }

    /// Total events observed so far.
    pub fn events_observed(&self) -> usize {
        self.total_events
    }

    /// Folds one stream into every accumulated metric, replaying it
    /// through `machine` exactly once.
    pub fn observe(&mut self, machine: &StateMachine, stream: &Stream) {
        for e in &stream.events {
            self.type_counts[e.event_type.index()] += 1;
        }
        self.total_events += stream.len();
        self.flow_all.push(stream.len() as f64);
        self.flow_srv_req
            .push(stream.count_of(EventType::ServiceRequest) as f64);
        self.flow_conn_rel
            .push(stream.count_of(EventType::ConnectionRelease) as f64);

        let outcome = replay(machine, stream);
        if let Some(m) = outcome.mean_sojourn_in(TopState::Connected) {
            self.sojourn_connected.push(m);
        }
        if let Some(m) = outcome.mean_sojourn_in(TopState::Idle) {
            self.sojourn_idle.push(m);
        }
        if let Some(m) = outcome.mean_sojourn_in(TopState::Deregistered) {
            self.sojourn_deregistered.push(m);
        }
        if outcome.bootstrapped {
            self.streams_checked += 1;
            self.events_checked += outcome.events_checked;
            if outcome.has_violation() {
                self.violating_streams += 1;
            }
            self.violating_events += outcome.violations.len();
            for v in outcome.violations {
                *self.kinds.entry(v).or_insert(0) += 1;
            }
        }
    }

    /// Event-type breakdown, equal to `Dataset::event_breakdown` on the
    /// observed streams.
    pub fn breakdown(&self) -> BTreeMap<EventType, f64> {
        EventType::ALL
            .iter()
            .map(|et| {
                let p = if self.total_events == 0 {
                    0.0
                } else {
                    self.type_counts[et.index()] as f64 / self.total_events as f64
                };
                (*et, p)
            })
            .collect()
    }

    /// ECDF of per-stream flow lengths for `kind`, equal to
    /// [`flow_length_ecdf`](crate::flowlen::flow_length_ecdf).
    pub fn flow_ecdf(&self, kind: crate::FlowLenKind) -> Ecdf {
        use crate::FlowLenKind;
        let v = match kind {
            FlowLenKind::All => self.flow_all.clone(),
            FlowLenKind::OfType(EventType::ServiceRequest) => self.flow_srv_req.clone(),
            FlowLenKind::OfType(EventType::ConnectionRelease) => self.flow_conn_rel.clone(),
            FlowLenKind::OfType(_) => panic!(
                "streaming flow-length accumulation covers All / SRV_REQ / S1_CONN_REL \
                 (the kinds FidelityReport uses)"
            ),
        };
        Ecdf::new(v)
    }

    /// ECDF of per-UE mean sojourns in `state`, equal to
    /// [`sojourn_ecdf`](crate::sojourn::sojourn_ecdf).
    pub fn sojourn_ecdf(&self, state: TopState) -> Ecdf {
        Ecdf::new(match state {
            TopState::Connected => self.sojourn_connected.clone(),
            TopState::Idle => self.sojourn_idle.clone(),
            TopState::Deregistered => self.sojourn_deregistered.clone(),
        })
    }

    /// Violation statistics, equal to [`violation_stats`](crate::violation_stats).
    pub fn violations(&self) -> ViolationStats {
        let mut by_kind: Vec<(Violation, usize)> =
            self.kinds.iter().map(|(v, c)| (*v, *c)).collect();
        by_kind.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{}", a.0).cmp(&format!("{}", b.0)))
        });
        ViolationStats {
            events_checked: self.events_checked,
            violating_events: self.violating_events,
            streams_checked: self.streams_checked,
            violating_streams: self.violating_streams,
            by_kind,
        }
    }

    /// Largest absolute breakdown difference against another accumulator.
    pub fn max_abs_breakdown_diff(&self, other: &StreamAccumulator) -> f64 {
        let a = self.breakdown();
        let b = other.breakdown();
        EventType::ALL
            .iter()
            .fold(0.0f64, |m, et| m.max((b[et] - a[et]).abs()))
    }
}

/// Accumulates every stream of a `.ctb` trace, verifying block checksums
/// up front so stream materialization cannot fail mid-pass. Only one
/// stream is resident at a time.
pub fn accumulate_reader(
    machine: &StateMachine,
    reader: &ColumnarReader,
) -> Result<StreamAccumulator, CtbError> {
    reader.verify()?;
    let mut acc = StreamAccumulator::new();
    for view in reader.streams() {
        let stream = view.to_stream().expect("ctb verified before accumulation");
        acc.observe(machine, &stream);
    }
    Ok(acc)
}

/// Assembles the full [`FidelityReport`] from two accumulators — the
/// streaming counterpart of [`FidelityReport::compute`], bit-identical on
/// the same data.
pub fn fidelity_from_accumulators(
    real: &StreamAccumulator,
    synth: &StreamAccumulator,
) -> FidelityReport {
    use crate::FlowLenKind;
    let v = synth.violations();
    FidelityReport {
        event_violation_rate: v.event_rate(),
        stream_violation_rate: v.stream_rate(),
        sojourn_connected: real
            .sojourn_ecdf(TopState::Connected)
            .max_y_distance(&synth.sojourn_ecdf(TopState::Connected)),
        sojourn_idle: real
            .sojourn_ecdf(TopState::Idle)
            .max_y_distance(&synth.sojourn_ecdf(TopState::Idle)),
        flow_length_all: real
            .flow_ecdf(FlowLenKind::All)
            .max_y_distance(&synth.flow_ecdf(FlowLenKind::All)),
        flow_length_srv_req: real
            .flow_ecdf(FlowLenKind::OfType(EventType::ServiceRequest))
            .max_y_distance(&synth.flow_ecdf(FlowLenKind::OfType(EventType::ServiceRequest))),
        flow_length_conn_rel: real
            .flow_ecdf(FlowLenKind::OfType(EventType::ConnectionRelease))
            .max_y_distance(&synth.flow_ecdf(FlowLenKind::OfType(EventType::ConnectionRelease))),
        max_breakdown_diff: real.max_abs_breakdown_diff(synth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flowlen::flow_length_ecdf, sojourn::sojourn_ecdf, violation_stats, FlowLenKind};
    use cpt_synth::SynthConfig;
    use cpt_trace::columnar::write_ctb;
    use cpt_trace::Dataset;

    fn accumulate_dataset(machine: &StateMachine, d: &Dataset) -> StreamAccumulator {
        let mut acc = StreamAccumulator::new();
        for s in &d.streams {
            acc.observe(machine, s);
        }
        acc
    }

    #[test]
    fn accumulator_matches_batch_metrics() {
        let d = cpt_synth::generate(&SynthConfig::new(50, 3).hours(0.3));
        let m = StateMachine::lte();
        let acc = accumulate_dataset(&m, &d);

        assert_eq!(acc.streams_observed(), d.num_streams());
        assert_eq!(acc.events_observed(), d.num_events());
        assert_eq!(acc.breakdown(), d.event_breakdown());
        assert_eq!(acc.violations(), violation_stats(&m, &d));
        for kind in [
            FlowLenKind::All,
            FlowLenKind::OfType(EventType::ServiceRequest),
            FlowLenKind::OfType(EventType::ConnectionRelease),
        ] {
            assert_eq!(
                acc.flow_ecdf(kind).max_y_distance(&flow_length_ecdf(&d, kind)),
                0.0
            );
        }
        for state in [TopState::Connected, TopState::Idle] {
            assert_eq!(
                acc.sojourn_ecdf(state)
                    .max_y_distance(&sojourn_ecdf(&m, &d, state)),
                0.0
            );
        }
    }

    #[test]
    fn streaming_fidelity_report_is_bit_identical_to_batch() {
        let real = cpt_synth::generate(&SynthConfig::new(40, 5).hours(0.25));
        let synth = cpt_synth::generate(&SynthConfig::new(40, 6).hours(0.25).starting_at(19.0));
        let m = StateMachine::lte();
        let batch = FidelityReport::compute(&m, &real, &synth);
        let streamed = fidelity_from_accumulators(
            &accumulate_dataset(&m, &real),
            &accumulate_dataset(&m, &synth),
        );
        assert_eq!(batch, streamed);
    }

    #[test]
    fn ctb_accumulation_matches_in_ram() {
        let d = cpt_synth::generate(&SynthConfig::new(30, 9).hours(0.25));
        let m = StateMachine::lte();
        let mut path = std::env::temp_dir();
        path.push(format!("cpt-metrics-streaming-{}.ctb", std::process::id()));
        write_ctb(&d, &path).expect("write ctb");
        let reader = ColumnarReader::open(&path).expect("open ctb");
        let from_ctb = accumulate_reader(&m, &reader).expect("accumulate ctb");
        let in_ram = accumulate_dataset(&m, &d);
        assert_eq!(from_ctb.violations(), in_ram.violations());
        assert_eq!(from_ctb.breakdown(), in_ram.breakdown());
        assert_eq!(from_ctb.streams_observed(), in_ram.streams_observed());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_accumulator_yields_zero_rates() {
        let acc = StreamAccumulator::new();
        let v = acc.violations();
        assert_eq!(v.event_rate(), 0.0);
        assert_eq!(v.stream_rate(), 0.0);
        assert_eq!(acc.breakdown().values().sum::<f64>(), 0.0);
    }
}
