//! Sojourn-time distributions (Fig. 2 / Fig. 5 / Table 6).
//!
//! The paper plots, per UE, the *average* time spent in a top-level state
//! (CONNECTED or IDLE), and reports the max y-distance between the CDFs of
//! these per-UE averages for real vs synthesized traces.

use cpt_statemachine::{replay, StateMachine, TopState};
use cpt_trace::stats::Ecdf;
use cpt_trace::Dataset;

/// Per-UE mean sojourn times in `state` (UEs with no completed visit to
/// `state` are skipped).
pub fn per_ue_mean_sojourns(
    machine: &StateMachine,
    dataset: &Dataset,
    state: TopState,
) -> Vec<f64> {
    dataset
        .streams
        .iter()
        .filter_map(|s| replay(machine, s).mean_sojourn_in(state))
        .collect()
}

/// ECDF of per-UE mean sojourns — the curves of Fig. 2 / Fig. 5.
pub fn sojourn_ecdf(machine: &StateMachine, dataset: &Dataset, state: TopState) -> Ecdf {
    Ecdf::new(per_ue_mean_sojourns(machine, dataset, state))
}

/// Max y-distance between the real and synthesized per-UE mean sojourn
/// CDFs (the Table 6 "Sojourn time" rows).
pub fn sojourn_distance(
    machine: &StateMachine,
    real: &Dataset,
    synth: &Dataset,
    state: TopState,
) -> f64 {
    sojourn_ecdf(machine, real, state).max_y_distance(&sojourn_ecdf(machine, synth, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};

    /// Stream alternating SRV_REQ/S1_CONN_REL with fixed CONNECTED and
    /// IDLE durations.
    fn cycle_stream(id: u64, conn: f64, idle: f64, cycles: usize) -> Stream {
        let mut events = Vec::new();
        let mut t = 0.0;
        for _ in 0..cycles {
            events.push(Event::new(EventType::ServiceRequest, t));
            t += conn;
            events.push(Event::new(EventType::ConnectionRelease, t));
            t += idle;
        }
        events.push(Event::new(EventType::ServiceRequest, t));
        Stream::new(UeId(id), DeviceType::Phone, events)
    }

    #[test]
    fn per_ue_means_match_construction() {
        let d = Dataset::new(vec![
            cycle_stream(0, 10.0, 100.0, 3),
            cycle_stream(1, 30.0, 50.0, 2),
        ]);
        let m = StateMachine::lte();
        let conn = per_ue_mean_sojourns(&m, &d, TopState::Connected);
        assert_eq!(conn.len(), 2);
        assert!((conn[0] - 10.0).abs() < 1e-9);
        assert!((conn[1] - 30.0).abs() < 1e-9);
        let idle = per_ue_mean_sojourns(&m, &d, TopState::Idle);
        assert!((idle[0] - 100.0).abs() < 1e-9);
        assert!((idle[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn identical_datasets_have_zero_distance() {
        let d = Dataset::new(vec![cycle_stream(0, 10.0, 100.0, 3)]);
        let m = StateMachine::lte();
        assert_eq!(sojourn_distance(&m, &d, &d, TopState::Connected), 0.0);
    }

    #[test]
    fn disjoint_sojourns_have_distance_one() {
        let a = Dataset::new(vec![cycle_stream(0, 10.0, 100.0, 3)]);
        let b = Dataset::new(vec![cycle_stream(0, 500.0, 100.0, 3)]);
        let m = StateMachine::lte();
        assert!((sojourn_distance(&m, &a, &b, TopState::Connected) - 1.0).abs() < 1e-12);
        // IDLE durations are identical → distance 0.
        assert_eq!(sojourn_distance(&m, &a, &b, TopState::Idle), 0.0);
    }

    #[test]
    fn ues_without_completed_sojourns_are_skipped() {
        let d = Dataset::new(vec![Stream::new(
            UeId(0),
            DeviceType::Phone,
            vec![Event::new(EventType::ServiceRequest, 0.0)],
        )]);
        let m = StateMachine::lte();
        assert!(per_ue_mean_sojourns(&m, &d, TopState::Connected).is_empty());
    }
}
