//! Checkpoint-selection heuristic (§5.5).
//!
//! GAN losses do not track sample quality, so the paper compares training
//! times model-agnostically: checkpoints are saved every N epochs; each is
//! scored on every fidelity metric; checkpoints are ranked per metric;
//! rank sums are computed; among the best 20 % of rank sums the *earliest*
//! checkpoint is selected — i.e. "how long until the model was this good".

/// Selects a checkpoint index from `metrics[checkpoint][metric]` values
/// (lower is better for every metric). `top_frac` is the fraction of
/// best-ranked checkpoints considered (the paper uses 0.2).
///
/// Panics if `metrics` is empty or rows have inconsistent lengths.
// `m` is a column index across every row of `metrics`; the suggested
// iterator rewrite (iterating rows) would be wrong.
#[allow(clippy::needless_range_loop)]
pub fn select_checkpoint(metrics: &[Vec<f64>], top_frac: f64) -> usize {
    assert!(!metrics.is_empty(), "no checkpoints to select from");
    let n_metrics = metrics[0].len();
    assert!(
        metrics.iter().all(|m| m.len() == n_metrics),
        "inconsistent metric vector lengths"
    );
    assert!(n_metrics > 0, "no metrics");
    assert!(top_frac > 0.0 && top_frac <= 1.0, "top_frac in (0,1]");

    let n = metrics.len();
    let mut rank_sums = vec![0usize; n];
    for m in 0..n_metrics {
        // Rank checkpoints for metric m: 0 = best (smallest value). Ties
        // share the order of their indices (stable sort), which favours
        // earlier checkpoints — consistent with the "earliest" tiebreak.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|a, b| {
            metrics[*a][m]
                .partial_cmp(&metrics[*b][m])
                .expect("metric values must not be NaN")
        });
        for (rank, ckpt) in order.into_iter().enumerate() {
            rank_sums[ckpt] += rank;
        }
    }
    // Top 20 % (at least one) by rank sum, then the earliest among them.
    let keep = ((n as f64 * top_frac).ceil() as usize).clamp(1, n);
    let mut by_sum: Vec<usize> = (0..n).collect();
    by_sum.sort_by_key(|i| rank_sums[*i]);
    by_sum[..keep]
        .iter()
        .copied()
        .min()
        .expect("keep >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_clear_winner() {
        // Checkpoint 2 dominates on every metric.
        let metrics = vec![
            vec![0.9, 0.8],
            vec![0.5, 0.6],
            vec![0.1, 0.1],
            vec![0.4, 0.5],
            vec![0.3, 0.4],
        ];
        assert_eq!(select_checkpoint(&metrics, 0.2), 2);
    }

    #[test]
    fn prefers_earliest_among_top_fraction() {
        // Checkpoints 1 and 3 are nearly tied as the best two; with
        // top_frac covering both, the earlier index must win.
        let metrics = vec![
            vec![0.9, 0.9],
            vec![0.11, 0.10],
            vec![0.8, 0.7],
            vec![0.10, 0.11],
            vec![0.5, 0.5],
        ];
        assert_eq!(select_checkpoint(&metrics, 0.4), 1);
    }

    #[test]
    fn single_checkpoint_is_selected() {
        assert_eq!(select_checkpoint(&[vec![1.0, 2.0]], 0.2), 0);
    }

    #[test]
    fn conflicting_metrics_use_rank_sum() {
        // ckpt 0 best on metric 0 (rank 0) but worst on metric 1 (rank 2):
        // sum 2. ckpt 1: ranks 1+0 = 1 → smallest rank sum. With a
        // top fraction keeping only one checkpoint, ckpt 1 wins.
        let metrics = vec![vec![0.1, 0.9], vec![0.2, 0.1], vec![0.3, 0.5]];
        assert_eq!(select_checkpoint(&metrics, 0.2), 1);
        // Widening the kept fraction to two admits ckpt 0, and the
        // "earliest" tiebreak then selects it.
        assert_eq!(select_checkpoint(&metrics, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "no checkpoints")]
    fn empty_input_panics() {
        select_checkpoint(&[], 0.2);
    }
}
