//! Discrete-event mobile-core-network (MCN) load simulator.
//!
//! The paper motivates control-plane traffic generation with two use
//! cases (§2.2); the first is *performance evaluation of MCN design*:
//! driving an MCN implementation with a large, realistic control-plane
//! workload to study throughput, latency, scalability and autoscaling
//! (CoreKube-style systems). The paper leaves "evaluating CPT-GPT's
//! effectiveness on downstream applications" as future work (§7) — this
//! crate implements that downstream application as a queueing model so
//! the repository can close the loop: an MCN *sized on synthetic traffic*
//! should behave like one sized on the real trace.
//!
//! Model: each control event is a job for the control plane. Jobs arrive
//! at their trace timestamps, wait in a bounded FIFO queue, and are
//! served by a pool of identical workers (think AMF/SMF worker pods) with
//! per-event-type service times. An optional autoscaler adjusts the pool
//! size between evaluation epochs based on observed utilization —
//! exercising exactly the diurnal-drift capability (C5) the paper calls
//! out. The simulator also tracks the per-UE state table (UEs currently
//! CONNECTED) that stateful MCN implementations must hold in memory.

pub mod report;
pub mod sim;

pub use report::McnReport;
pub use sim::{AutoscaleConfig, McnConfig, simulate};
