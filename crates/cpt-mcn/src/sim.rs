//! The event-driven queueing simulation.

use crate::report::McnReport;
use cpt_statemachine::{replay, StateMachine, TopState};
use cpt_trace::{Dataset, EventType};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Autoscaler settings: every `epoch_seconds` the worker count is set to
/// `ceil(observed_busy_fraction · workers / target_utilization)`, clamped
/// to `[min_workers, max_workers]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Evaluation window in seconds.
    pub epoch_seconds: f64,
    /// Utilization the autoscaler aims for (e.g. 0.6).
    pub target_utilization: f64,
    /// Lower bound on the pool size.
    pub min_workers: usize,
    /// Upper bound on the pool size.
    pub max_workers: usize,
}

/// MCN model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McnConfig {
    /// Initial (and, without autoscaling, permanent) worker count.
    pub workers: usize,
    /// FIFO queue capacity; jobs arriving at a full queue are dropped
    /// (counted as rejected signaling, like an overload-control MCN).
    pub queue_capacity: usize,
    /// Optional autoscaler.
    pub autoscale: Option<AutoscaleConfig>,
}

impl McnConfig {
    /// A fixed-size deployment.
    pub fn fixed(workers: usize) -> Self {
        McnConfig {
            workers,
            queue_capacity: 10_000,
            autoscale: None,
        }
    }

    /// An autoscaling deployment starting from `workers`.
    pub fn autoscaling(workers: usize, target_utilization: f64) -> Self {
        McnConfig {
            workers,
            queue_capacity: 10_000,
            autoscale: Some(AutoscaleConfig {
                epoch_seconds: 300.0,
                target_utilization,
                min_workers: 1,
                max_workers: 4096,
            }),
        }
    }
}

/// Per-event-type control-plane processing cost in seconds. Values follow
/// the relative message-sequence complexity of each procedure: attach is
/// by far the heaviest (authentication + session establishment), handover
/// involves path switching, service request / release are the cheap
/// steady-state procedures.
pub fn service_time(event: EventType) -> f64 {
    match event {
        EventType::Attach => 0.040,
        EventType::Detach => 0.015,
        EventType::ServiceRequest => 0.008,
        EventType::ConnectionRelease => 0.005,
        EventType::Handover => 0.020,
        EventType::TrackingAreaUpdate => 0.010,
    }
}

/// Runs the MCN model over every event of `trace` (all streams merged in
/// timestamp order) and returns aggregate load/latency statistics.
pub fn simulate(trace: &Dataset, config: &McnConfig) -> McnReport {
    assert!(config.workers > 0, "need at least one worker");

    // Merge all events, tagging arrival times.
    let mut arrivals: Vec<(f64, EventType)> = trace
        .streams
        .iter()
        .flat_map(|s| s.events.iter().map(|e| (e.timestamp, e.event_type)))
        .collect();
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

    let mut report = McnReport::default();
    report.initial_workers = config.workers;
    report.peak_workers = config.workers;
    if arrivals.is_empty() {
        report.final_workers = config.workers;
        return report;
    }

    // Worker pool: a min-heap of worker-free times (ordered f64 bits are
    // safe: times are non-negative finite).
    let mut workers = config.workers;
    let mut free_at: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();
    let to_bits = |t: f64| -> u64 { (t.max(0.0) * 1e6) as u64 };
    let from_bits = |b: u64| -> f64 { b as f64 / 1e6 };

    let mut queue: VecDeque<(f64, EventType)> = VecDeque::new();

    // Autoscaler accounting.
    let mut epoch_busy = 0.0f64;
    let mut epoch_start = arrivals[0].0;

    let drain = |queue: &mut VecDeque<(f64, EventType)>,
                     free_at: &mut BinaryHeap<Reverse<u64>>,
                     now: f64,
                     epoch_busy: &mut f64,
                     report: &mut McnReport| {
        // Start any queued job whose worker frees up not after `now`.
        while let (Some(&Reverse(fb)), false) = (free_at.peek(), queue.is_empty()) {
            let free = from_bits(fb);
            if free > now {
                break;
            }
            let (arrived, event) = queue.pop_front().expect("nonempty");
            free_at.pop();
            let start = free.max(arrived);
            let svc = service_time(event);
            let done = start + svc;
            free_at.push(Reverse(to_bits(done)));
            *epoch_busy += svc;
            report.record_latency(event, done - arrived);
        }
    };

    for (arrive, event) in arrivals {
        // Autoscale at epoch boundaries.
        if let Some(auto) = &config.autoscale {
            while arrive - epoch_start >= auto.epoch_seconds {
                let capacity_time = workers as f64 * auto.epoch_seconds;
                let utilization = (epoch_busy / capacity_time).min(1.0);
                let desired = ((utilization * workers as f64) / auto.target_utilization)
                    .ceil()
                    .max(auto.min_workers as f64) as usize;
                let desired = desired.clamp(auto.min_workers, auto.max_workers);
                if desired != workers {
                    report.scale_events.push((epoch_start + auto.epoch_seconds, desired));
                    // Grow: add idle workers. Shrink: drop the idlest.
                    while workers < desired {
                        free_at.push(Reverse(to_bits(arrive)));
                        workers += 1;
                    }
                    while workers > desired && workers > 1 {
                        // Remove the worker that frees earliest (idlest).
                        free_at.pop();
                        workers -= 1;
                    }
                }
                epoch_busy = 0.0;
                epoch_start += auto.epoch_seconds;
                report.peak_workers = report.peak_workers.max(workers);
            }
        }

        drain(&mut queue, &mut free_at, arrive, &mut epoch_busy, &mut report);
        if queue.len() >= config.queue_capacity {
            report.dropped += 1;
            continue;
        }
        queue.push_back((arrive, event));
        report.peak_queue = report.peak_queue.max(queue.len());
        drain(&mut queue, &mut free_at, arrive, &mut epoch_busy, &mut report);
    }
    // Flush the tail.
    drain(
        &mut queue,
        &mut free_at,
        f64::MAX / 4.0,
        &mut epoch_busy,
        &mut report,
    );

    report.peak_workers = report.peak_workers.max(workers);
    report.final_workers = workers;

    // Peak simultaneously-CONNECTED UEs (per-UE state table footprint).
    report.peak_connected_ues = peak_connected(trace);
    report.finalize();
    report
}

/// Peak number of simultaneously CONNECTED UEs over the trace, from
/// completed CONNECTED sojourns.
fn peak_connected(trace: &Dataset) -> usize {
    let machine = StateMachine::for_generation(trace.generation);
    let mut deltas: Vec<(f64, i64)> = Vec::new();
    for s in &trace.streams {
        let outcome = replay(&machine, s);
        let mut t = s.events.first().map(|e| e.timestamp).unwrap_or(0.0);
        for rec in &outcome.sojourns {
            if rec.state == TopState::Connected {
                deltas.push((t, 1));
                deltas.push((t + rec.duration, -1));
            }
            t += rec.duration;
        }
    }
    deltas.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("no NaN")
            .then(a.1.cmp(&b.1)) // exits before entries at equal times
    });
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in deltas {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, Stream, UeId};

    fn uniform_trace(n_events: usize, spacing: f64) -> Dataset {
        let events = (0..n_events)
            .map(|i| Event::new(EventType::ServiceRequest, i as f64 * spacing))
            .collect();
        Dataset::new(vec![Stream::new(UeId(0), DeviceType::Phone, events)])
    }

    #[test]
    fn underloaded_system_has_service_time_latency() {
        // Arrivals far apart: every job is served immediately, so latency
        // equals the SRV_REQ service time.
        let trace = uniform_trace(100, 1.0);
        let r = simulate(&trace, &McnConfig::fixed(2));
        assert_eq!(r.processed, 100);
        assert_eq!(r.dropped, 0);
        assert!((r.mean_latency - service_time(EventType::ServiceRequest)).abs() < 1e-9);
        assert!((r.p99_latency - r.mean_latency).abs() < 1e-9);
        assert!(r.peak_queue <= 1);
    }

    #[test]
    fn overloaded_system_queues_and_latency_grows() {
        // One worker, arrivals every 1 ms but 8 ms service: queue builds.
        let trace = uniform_trace(200, 0.001);
        let r = simulate(&trace, &McnConfig::fixed(1));
        assert_eq!(r.processed, 200);
        assert!(r.mean_latency > 10.0 * service_time(EventType::ServiceRequest));
        assert!(r.p99_latency > r.mean_latency);
        assert!(r.peak_queue > 50);
    }

    #[test]
    fn more_workers_reduce_latency() {
        let trace = uniform_trace(500, 0.002);
        let slow = simulate(&trace, &McnConfig::fixed(1));
        let fast = simulate(&trace, &McnConfig::fixed(8));
        assert!(fast.mean_latency < slow.mean_latency);
    }

    #[test]
    fn bounded_queue_drops_over_capacity() {
        let mut cfg = McnConfig::fixed(1);
        cfg.queue_capacity = 10;
        let trace = uniform_trace(500, 0.0001);
        let r = simulate(&trace, &cfg);
        assert!(r.dropped > 0);
        assert_eq!(r.processed + r.dropped, 500);
    }

    #[test]
    fn autoscaler_grows_under_load_and_is_recorded() {
        // 20-minute overload with a 5-minute autoscale epoch.
        let trace = uniform_trace(120_000, 0.01);
        let cfg = McnConfig::autoscaling(1, 0.6);
        let r = simulate(&trace, &cfg);
        assert!(
            r.peak_workers > 1,
            "autoscaler never scaled up: {:?}",
            r.scale_events
        );
        assert!(!r.scale_events.is_empty());
        // Scaled system keeps p99 close to service time.
        assert!(r.p99_latency < 1.0, "p99 {:.3}", r.p99_latency);
    }

    #[test]
    fn attach_heavier_than_release() {
        assert!(service_time(EventType::Attach) > service_time(EventType::ConnectionRelease));
    }

    #[test]
    fn peak_connected_counts_overlap() {
        // Two UEs connected [0,100) and [50,150): peak overlap is 2.
        let mk = |id, t0: f64| {
            Stream::new(
                UeId(id),
                DeviceType::Phone,
                vec![
                    Event::new(EventType::ServiceRequest, t0),
                    Event::new(EventType::ConnectionRelease, t0 + 100.0),
                    Event::new(EventType::ServiceRequest, t0 + 500.0),
                ],
            )
        };
        let trace = Dataset::new(vec![mk(0, 0.0), mk(1, 50.0)]);
        assert_eq!(peak_connected(&trace), 2);
        let disjoint = Dataset::new(vec![mk(0, 0.0), mk(1, 200.0)]);
        assert_eq!(peak_connected(&disjoint), 1);
    }

    #[test]
    fn deterministic_and_empty_trace_ok() {
        let trace = uniform_trace(50, 0.01);
        let a = simulate(&trace, &McnConfig::fixed(2));
        let b = simulate(&trace, &McnConfig::fixed(2));
        assert_eq!(a, b);
        let empty = Dataset::new(vec![]);
        let r = simulate(&empty, &McnConfig::fixed(2));
        assert_eq!(r.processed, 0);
    }
}
