//! Aggregated MCN simulation results.

use cpt_trace::EventType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Load/latency statistics produced by [`crate::simulate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct McnReport {
    /// Jobs processed.
    pub processed: usize,
    /// Jobs rejected at a full queue.
    pub dropped: usize,
    /// Mean control-plane latency (seconds, arrival → completion).
    pub mean_latency: f64,
    /// 95th percentile latency.
    pub p95_latency: f64,
    /// 99th percentile latency.
    pub p99_latency: f64,
    /// Largest queue length observed.
    pub peak_queue: usize,
    /// Worker pool size at start.
    pub initial_workers: usize,
    /// Worker pool size at the end of the run.
    pub final_workers: usize,
    /// Largest pool size the autoscaler reached.
    pub peak_workers: usize,
    /// `(time, new_size)` autoscale decisions.
    pub scale_events: Vec<(f64, usize)>,
    /// Peak number of simultaneously CONNECTED UEs (per-UE state table
    /// footprint for stateful MCN implementations).
    pub peak_connected_ues: usize,
    /// Jobs processed per event type.
    pub per_event_processed: BTreeMap<EventType, usize>,
    /// All observed latencies (consumed by [`McnReport::finalize`]).
    #[serde(skip)]
    latencies: Vec<f64>,
}

impl McnReport {
    pub(crate) fn record_latency(&mut self, event: EventType, latency: f64) {
        self.processed += 1;
        *self.per_event_processed.entry(event).or_insert(0) += 1;
        self.latencies.push(latency);
    }

    pub(crate) fn finalize(&mut self) {
        if self.latencies.is_empty() {
            return;
        }
        self.latencies
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        self.mean_latency = self.latencies.iter().sum::<f64>() / self.latencies.len() as f64;
        let q = |p: f64| {
            let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
            self.latencies[idx]
        };
        self.p95_latency = q(0.95);
        self.p99_latency = q(0.99);
        self.latencies.clear();
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} processed ({} dropped), latency mean {:.1} ms / p95 {:.1} ms / p99 {:.1} ms, \
             peak queue {}, workers {}→{} (peak {}), peak CONNECTED UEs {}",
            self.processed,
            self.dropped,
            self.mean_latency * 1e3,
            self.p95_latency * 1e3,
            self.p99_latency * 1e3,
            self.peak_queue,
            self.initial_workers,
            self.final_workers,
            self.peak_workers,
            self.peak_connected_ues
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_computes_percentiles() {
        let mut r = McnReport::default();
        for i in 1..=100 {
            r.record_latency(EventType::ServiceRequest, i as f64 / 1000.0);
        }
        r.finalize();
        assert_eq!(r.processed, 100);
        assert!((r.mean_latency - 0.0505).abs() < 1e-9);
        assert!((r.p95_latency - 0.095).abs() < 1e-6);
        assert!((r.p99_latency - 0.099).abs() < 1e-6);
        assert_eq!(r.per_event_processed[&EventType::ServiceRequest], 100);
        // Summary renders without panicking and mentions the counts.
        assert!(r.summary().contains("100 processed"));
    }

    #[test]
    fn empty_report_finalizes_to_zeros() {
        let mut r = McnReport::default();
        r.finalize();
        assert_eq!(r.mean_latency, 0.0);
        assert_eq!(r.processed, 0);
    }
}
