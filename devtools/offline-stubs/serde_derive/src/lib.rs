//! Offline stub for `serde_derive`: the real crate cannot be fetched in the
//! sandboxed build environment (no network, no registry cache), so this
//! hand-rolled derive parses just enough of the item to emit an empty impl
//! of the stub marker traits. See devtools/offline-stubs/README.md.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the derived struct/enum, rejecting generics (the
/// workspace derives only concrete types; a generic type would need real
/// serde semantics the stub cannot fake).
fn item_name(input: TokenStream) -> String {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.get(i + 1) {
                    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
                        if p.as_char() == '<' {
                            panic!(
                                "offline stub derive does not support generic type `{name}`"
                            );
                        }
                    }
                    return name.to_string();
                }
            }
        }
        i += 1;
    }
    panic!("offline stub derive: could not find item name in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("stub Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("stub Deserialize impl parses")
}
