//! Offline stub for `criterion`: exists so dependency resolution succeeds
//! offline. Bench targets cannot compile against this; run benches in CI
//! only. See devtools/offline-stubs/README.md.
