//! Offline stub for `criterion`: enough API to compile and smoke-run the
//! bench targets (`cargo check --all-targets` / `cargo bench` offline).
//! There is no statistics engine — `Bencher::iter` runs the closure once so
//! a bench binary doubles as a cheap does-it-run check. Real measurements
//! come from CI's genuine criterion. See devtools/offline-stubs/README.md.

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0 };
        f(&mut b);
        eprintln!("offline-bench {id}: ran {} iteration(s), unmeasured", b.iters);
        self
    }

    pub fn final_summary(&self) {
        let _ = self.sample_size;
    }
}

pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        self.iters += 1;
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
