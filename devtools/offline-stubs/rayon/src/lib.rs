//! Offline stub for `rayon`: the parallel-iterator entry points return
//! plain std iterators, so everything runs *sequentially but correctly*.
//! The workspace's determinism contract (results independent of thread
//! count) means sequential execution produces the same answers — only
//! slower. See devtools/offline-stubs/README.md.

pub fn current_num_threads() -> usize {
    1
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("offline rayon stub: thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

pub struct ThreadPool;

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        1
    }
}

pub mod iter {
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;

        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;

        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;
        type Item = <&'data I as IntoIterator>::Item;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;

        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        type Item = <&'data mut I as IntoIterator>::Item;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod slice {
    pub trait ParallelSlice<T: Sync> {
        fn as_parallel_slice(&self) -> &[T];

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.as_parallel_slice().chunks(chunk_size)
        }

        fn par_windows(&self, window_size: usize) -> std::slice::Windows<'_, T> {
            self.as_parallel_slice().windows(window_size)
        }
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn as_parallel_slice(&self) -> &[T] {
            self
        }
    }

    pub trait ParallelSliceMut<T: Send> {
        fn as_parallel_slice_mut(&mut self) -> &mut [T];

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.as_parallel_slice_mut().chunks_mut(chunk_size)
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}
