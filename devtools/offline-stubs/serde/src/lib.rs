//! Offline stub for `serde`: marker traits with no methods, so derived
//! impls (from the stub `serde_derive`) typecheck without any real
//! serialization machinery. Code that only *derives* and passes values to
//! `serde_json` functions compiles against this; code calling serializer
//! methods would not (none exists in this workspace).
//! See devtools/offline-stubs/README.md.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
    pub use crate::Deserialize;
}

macro_rules! impl_prim {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64,
    bool, char, String, (), std::path::PathBuf, std::time::Duration
);

impl Serialize for str {}
impl Serialize for std::path::Path {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for &mut T {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {}
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T, S> Deserialize<'de> for std::collections::HashSet<T, S>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);
