//! Offline stub for `proptest`: exists so dependency resolution succeeds
//! offline. Test targets that `use proptest` cannot compile against this;
//! run proptest-based suites in CI only. See devtools/offline-stubs/README.md.
