//! Offline stub for `proptest`: a deterministic miniature property runner.
//!
//! Unlike the resolution-only stubs, this one is functional: `proptest!`
//! expands to a `#[test]` that draws each argument from its strategy with a
//! splitmix64 generator seeded from the test name, runs the body for
//! `ProptestConfig::cases` iterations, and panics with the `prop_assert!`
//! message on the first failure. There is no shrinking and no persistence —
//! a failing case reports the raw values via the assertion message only.
//! The surface mirrors exactly what this repo uses: `Strategy` (with
//! `prop_map`/`boxed`), `Just`, numeric `Range`/`RangeInclusive` strategies,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig::with_cases`,
//! and the `prop_assert*` family. See devtools/offline-stubs/README.md.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (re-exported from the
    /// prelude as `ProptestConfig`). Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; keep the offline runner cheap.
            Config { cases: 16 }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }
}

pub mod strategy {
    /// Same splitmix64 as the offline `rand` stub: tiny, full-period, and
    /// deterministic across runs and platforms.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Object-safe slice of the real `Strategy` trait: `generate` replaces
    /// the real `new_tree`/`ValueTree` machinery (no shrinking offline).
    pub trait Strategy {
        type Value;

        fn generate(&self, state: &mut u64) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, state: &mut u64) -> V {
            (**self).generate(state)
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _state: &mut u64) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, state: &mut u64) -> O {
            (self.f)(self.inner.generate(state))
        }
    }

    /// Backs `prop_oneof!`: uniform choice among boxed variants (the real
    /// macro supports weights; this repo only uses the unweighted form).
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, state: &mut u64) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one variant");
            let idx = (splitmix64(state) % self.0.len() as u64) as usize;
            self.0[idx].generate(state)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, state: &mut u64) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (splitmix64(state) as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, state: &mut u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (splitmix64(state) as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, state: &mut u64) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    // 53 uniform mantissa bits in [0, 1); the end stays open.
                    let frac = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64 + frac * (self.end as f64 - self.start as f64);
                    v as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, state: &mut u64) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    assert!(lo <= hi, "empty float range strategy");
                    let frac = (splitmix64(state) >> 10) as f64 / ((1u64 << 54) - 1) as f64;
                    (lo + frac * (hi - lo)) as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, state: &mut u64) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(state),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    use crate::strategy::{splitmix64, Strategy};

    /// Mirror of `proptest::collection::SizeRange`: conversions exist only
    /// from usize ranges, which (as in the real crate) is what makes bare
    /// `0..40` literals in `vec(elem, 0..40)` infer as usize.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(elem, len_range)` — the length is drawn
    /// uniformly from `size`, then that many elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, state: &mut u64) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let len = self.size.lo + (splitmix64(state) % span) as usize;
            (0..len).map(|_| self.elem.generate(state)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Deterministic per-test seed so failures reproduce exactly; distinct
/// tests draw distinct streams.
#[doc(hidden)]
pub fn seed_from_name(name: &str) -> u64 {
    name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // The real macro passes `#[test]` through from the caller rather
        // than adding it; keep that so attribute sets match exactly.
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __state: u64 = $crate::seed_from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __state);)*
                let __res = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __res {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(__e) => {
                        panic!("proptest case {} of {} failed: {}", __case + 1, __cfg.cases, __e)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: `{:?}`", __l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
