//! Offline stub for `serde_json`: function signatures faithful enough for
//! `cargo check`, with bodies that abort at runtime. Tests that touch the
//! JSON wire format cannot run against this stub; pure engine-level tests
//! can (they never call into it). See devtools/offline-stubs/README.md.

use std::fmt;

pub struct Error {
    msg: String,
}

impl Error {
    fn stub() -> Self {
        Error {
            msg: "offline serde_json stub cannot (de)serialize".to_string(),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

fn die() -> ! {
    unimplemented!("offline serde_json stub: runtime (de)serialization is unavailable")
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    die()
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    die()
}

pub fn from_reader<R: std::io::Read, T: serde::de::DeserializeOwned>(_rdr: R) -> Result<T> {
    die()
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    die()
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    die()
}

pub fn to_vec<T: serde::Serialize + ?Sized>(_value: &T) -> Result<Vec<u8>> {
    die()
}

pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    _writer: W,
    _value: &T,
) -> Result<()> {
    die()
}

pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    _writer: W,
    _value: &T,
) -> Result<()> {
    die()
}

pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value> {
    die()
}

pub fn from_value<T: serde::de::DeserializeOwned>(_value: Value) -> Result<T> {
    die()
}

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(std::collections::BTreeMap<String, Value>),
}

impl serde::Serialize for Value {}
impl<'de> serde::Deserialize<'de> for Value {}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut std::collections::BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
