//! Offline stub for `rand` 0.8: a *functional* subset backed by splitmix64.
//! Unlike the typecheck-only serde stubs, this one actually runs — the
//! stream of numbers differs from real `rand`, but every workspace test
//! asserts self-consistency (determinism across thread counts, engine vs.
//! reference decoder), not golden values, so tests that avoid serde_json
//! at runtime are executable offline. See devtools/offline-stubs/README.md.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker for types `Rng::gen` can produce, mapped from one u64 draw.
pub trait StandardSample {
    fn from_bits(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl StandardSample for $t {
                fn from_bits(bits: u64) -> $t {
                    bits as $t
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn from_bits(bits: u64) -> u128 {
        // One draw only; callers needing full-width u128 entropy should
        // combine two gen::<u64>() draws themselves.
        bits as u128
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between(bits: u64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_between(bits: u64, lo: $t, hi: $t, inclusive: bool) -> $t {
                    let lo_w = lo as i128;
                    let hi_w = hi as i128;
                    let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                    assert!(span > 0, "gen_range: empty range");
                    (lo_w + (bits as i128).rem_euclid(span)) as $t
                }
            }
        )*
    };
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(bits: u64, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        lo + f64::from_bits_unit(bits) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between(bits: u64, lo: f32, hi: f32, _inclusive: bool) -> f32 {
        lo + f32::from_bits_unit(bits) * (hi - lo)
    }
}

trait UnitFloat {
    fn from_bits_unit(bits: u64) -> Self;
}

impl UnitFloat for f64 {
    fn from_bits_unit(bits: u64) -> f64 {
        <f64 as StandardSample>::from_bits(bits)
    }
}

impl UnitFloat for f32 {
    fn from_bits_unit(bits: u64) -> f32 {
        <f32 as StandardSample>::from_bits(bits)
    }
}

/// Range forms accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng.next_u64(), self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng.next_u64(), lo, hi, true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    /// Splitmix64 generator standing in for rand's StdRng. Deterministic,
    /// seedable, statistically fine for tests — but a different stream
    /// than the real StdRng (ChaCha12), so artifacts generated offline are
    /// not comparable to CI-generated ones.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            StdRng {
                state: u64::from_le_bytes(first),
            }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

pub mod seq {
    use crate::Rng;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, identical shape to rand's implementation.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
