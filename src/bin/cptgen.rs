//! `cptgen` — command-line front end for the CPT-GPT workspace.
//!
//! ```text
//! cptgen simulate --ues 500 --device phone --hours 1 --seed 42 -o real.jsonl
//! cptgen train    --input real.jsonl --epochs 24 -o model.json
//! cptgen train    --input real.jsonl --epochs 24 -o model.json \
//!                 --checkpoint ckpt.json --checkpoint-every 2
//! cptgen train    --input real.jsonl --epochs 24 -o model.json \
//!                 --checkpoint ckpt.json --resume
//! cptgen generate --model model.json --streams 1000 --seed 7 -o synth.jsonl
//! cptgen serve    --model model.json --addr 127.0.0.1:9000 --workers 4
//! cptgen loadgen  --addr 127.0.0.1:9000 --sessions 1000 --concurrent 200
//! cptgen evaluate --real real.jsonl --synth synth.jsonl
//! cptgen mcn      --input synth.jsonl --workers 4
//! cptgen stats    --input real.jsonl
//! cptgen bench    --quick -o BENCH_throughput.json --check BENCH_baseline.json
//! cptgen dot      [--generation 4g|5g]
//! ```
//!
//! The file formats are the workspace's own: JSON-lines datasets
//! (`cpt-trace::io`) and JSON model bundles (config + tokenizer + weights
//! + initial-event distribution).
//!
//! Failures never panic; they map to documented exit codes:
//! `2` usage, `3` data/IO error, `4` invalid configuration or model,
//! `5` training diverged beyond recovery, `6` checkpoint error,
//! `7` throughput regression beyond the allowed factor,
//! `8` serve/network failure (bind, connect, protocol).

use cpt::gpt::{
    fit_tokenizer_streaming, resume_training, resume_training_source, train_with_checkpoints,
    train_source_with_checkpoints, CheckpointSpec, ColumnarSource, CptGpt, CptGptConfig,
    GenerateConfig, GenerateError, ScaleKind, Tokenizer, TrainConfig, TrainError,
};
use cpt::serve::{
    resolve_parallelism, run_loadgen, ChaosPlan, LoadgenConfig, ServeError, ServerConfig,
};
use cpt::mcn::{simulate, McnConfig};
use cpt::metrics::{
    accumulate_reader, fidelity_from_accumulators, FidelityReport, FlowLenKind, StreamAccumulator,
};
use cpt::statemachine::StateMachine;
use cpt::synth::{generate as synth_generate, generate_ctb, generate_device, SynthConfig};
use cpt::trace::columnar::{write_ctb, ColumnarReader, ColumnarWriter, CtbError};
use cpt::trace::{io as trace_io, Dataset, DeviceType, Generation};
use std::collections::HashMap;
use std::process::ExitCode;

/// Exit code for bad command-line usage.
const EXIT_USAGE: u8 = 2;
/// Exit code for data/filesystem errors (unreadable trace, bad JSONL, ...).
const EXIT_DATA: u8 = 3;
/// Exit code for invalid configuration or an unusable model.
const EXIT_CONFIG: u8 = 4;
/// Exit code for unrecoverable training divergence.
const EXIT_DIVERGED: u8 = 5;
/// Exit code for checkpoint save/load failures.
const EXIT_CHECKPOINT: u8 = 6;
/// Exit code for a throughput regression beyond the allowed factor.
const EXIT_REGRESSION: u8 = 7;
/// Exit code for serve/network failures (bind, connect, protocol).
const EXIT_SERVE: u8 = 8;

/// A CLI failure: a message for stderr plus the process exit code it maps
/// to. Every library error converts into one of these — `main` never sees
/// a panic from a bad file or config.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn data(message: impl Into<String>) -> Self {
        CliError {
            code: EXIT_DATA,
            message: message.into(),
        }
    }
}

impl From<trace_io::IoError> for CliError {
    fn from(e: trace_io::IoError) -> Self {
        CliError::data(e.to_string())
    }
}

impl From<CtbError> for CliError {
    fn from(e: CtbError) -> Self {
        CliError::data(e.to_string())
    }
}

/// Whether a path names a binary columnar trace (`.ctb`); everything else
/// is treated as JSONL, matching the historical default.
fn is_ctb(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("ctb"))
}

impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        let code = match &e {
            TrainError::InvalidConfig { .. } => EXIT_CONFIG,
            TrainError::NoTrainableStreams => EXIT_DATA,
            TrainError::Diverged { .. } => EXIT_DIVERGED,
            // A checkpoint that *parsed* but holds non-finite or mis-shaped
            // weights is a bad model, not an IO failure.
            TrainError::Checkpoint(cpt::gpt::CheckpointError::Validation { .. }) => EXIT_CONFIG,
            TrainError::Checkpoint(_) => EXIT_CHECKPOINT,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

impl From<GenerateError> for CliError {
    fn from(e: GenerateError) -> Self {
        CliError {
            code: EXIT_CONFIG,
            message: e.to_string(),
        }
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        let code = match &e {
            // Bad flag values are usage errors, like everywhere else.
            ServeError::InvalidConfig { .. } => EXIT_USAGE,
            // A model the engine cannot serve is a bad model.
            ServeError::Generate(_) => EXIT_CONFIG,
            // Everything operational (bind/connect failures, overload,
            // shutdown races) is a serve failure.
            _ => EXIT_SERVE,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cptgen <command> [options]\n\
         \n\
         commands:\n\
           simulate   --ues N [--device phone|connected_car|tablet|mixed]\n\
         \u{20}            [--hours H] [--start-hour H] [--seed S] -o OUT.jsonl\n\
           train      --input TRACE.jsonl [--epochs N] [--lr LR] [--max-len L]\n\
         \u{20}            [--d-model D] [--seed S] [--threads N] [--microbatch M]\n\
         \u{20}            -o MODEL.json  (bit-identical at any --threads)\n\
         \u{20}            [--checkpoint CKPT.json] [--checkpoint-every N] [--resume]\n\
           generate   --model MODEL.json --streams N [--device D] [--seed S]\n\
         \u{20}            [--threads N] -o OUT.jsonl\n\
           serve      --model MODEL.json [--addr HOST:PORT] [--workers N]\n\
         \u{20}            [--shards N]   (shared-nothing engine shards, default 1)\n\
         \u{20}            [--max-sessions N] [--queue-capacity N] [--slice-budget N]\n\
         \u{20}            [--max-connections N] [--read-timeout-ms MS]\n\
         \u{20}            [--detach-ttl-secs S]   (line JSON or negotiated binary\n\
         \u{20}            framing, per connection; port 0 = auto)\n\
         \u{20}            [--no-batch-decode]   (sequential fallback; bit-identical)\n\
         \u{20}            [--batch-max N] [--quantized]   (int8 weights, approximate)\n\
         \u{20}            [--registry DIR]   (crash-safe model registry: enables\n\
         \u{20}            publish/rollback/finetune; restart serves last published)\n\
         \u{20}            chaos (deterministic fault injection, all off by default):\n\
         \u{20}            [--chaos-seed S] [--chaos-panic-session ID]\n\
         \u{20}            [--chaos-panic-at-event N] [--chaos-delay-every N]\n\
         \u{20}            [--chaos-delay-ms MS] [--chaos-drop-conn IDX]\n\
         \u{20}            [--chaos-drop-after N] [--chaos-corrupt-every N]\n\
         \u{20}            [--chaos-crash-commit N] [--chaos-corrupt-candidate N]\n\
         \u{20}            [--chaos-panic-finetune N] [--chaos-publish-delay-ms MS]\n\
         \u{20}            [--chaos-poison-session ID] [--chaos-poison-at N]\n\
           ctl        --addr HOST:PORT <action> [-o OUT.json]   (model lifecycle)\n\
         \u{20}            --publish MODEL.json | --publish-version N | --rollback\n\
         \u{20}            | --finetune TRACE.jsonl [--epochs N] [--seed S]\n\
         \u{20}            [--wait-secs S]   (poll until the fine-tune lands)\n\
         \u{20}            | --versions | --stats\n\
           loadgen    --addr HOST:PORT [--sessions N] [--concurrent N]\n\
         \u{20}            [--rate R] [--streams N] [--threads N] [--duration-secs S]\n\
         \u{20}            [--seed S] [--shutdown] [-o REPORT.json]\n\
         \u{20}            [--wire json|bin]   (codec; digest is codec-independent)\n\
         \u{20}            [--connect-retries N] [--retry-backoff-ms MS] [--no-reattach]\n\
           evaluate   --real REAL.jsonl --synth SYNTH.jsonl\n\
           trace      convert --input IN -o OUT   (JSONL <-> .ctb, streaming)\n\
         \u{20}            | info --input F.ctb | verify --input F.ctb\n\
           mcn        --input TRACE.jsonl [--workers N] [--autoscale]\n\
           stats      --input TRACE.jsonl\n\
           bench      [--quick] [-o OUT.json] [--check BASELINE.json]\n\
         \u{20}            [--max-regression F]   (throughput report, default 2.0)\n\
         \u{20}            [--min-train-speedup F]   (fail if multi-thread train\n\
         \u{20}            throughput < F x 1-thread; skipped on 1-core runners)\n\
         \u{20}            [--min-serve-speedup F]   (fail if batched serve decode\n\
         \u{20}            < F x sequential; skipped below 4 cores)\n\
         \u{20}            [--min-shard-speedup F]   (fail if 8-shard serve\n\
         \u{20}            < F x 1-shard; skipped below 4 cores)\n\
           dot        [--generation 4g|5g]   (Graphviz of the UE state machine)\n\
         \n\
         simulate/train/generate/stats/evaluate accept .ctb paths anywhere a\n\
         .jsonl trace is accepted; .ctb runs stream out-of-core (mmap'd,\n\
         bounded RSS) and train is bit-identical to the in-RAM path.\n\
         \n\
         exit codes: 0 ok, 2 usage, 3 data/io, 4 bad config/model,\n\
         \u{20}           5 training diverged, 6 checkpoint error,\n\
         \u{20}           7 throughput regression, 8 serve/network failure\n"
    );
    ExitCode::from(EXIT_USAGE)
}

/// Minimal `--key value` / `--flag` argument parser.
fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| args[i].strip_prefix("-"))
            .ok_or_else(|| format!("expected option, found {:?}", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with('-') {
            map.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            map.insert(key.to_string(), String::new());
            i += 1;
        }
    }
    Ok(map)
}

fn get_parsed<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value {v:?} for --{key}"))),
    }
}

/// Like [`get_parsed`], but distinguishes "flag absent" from a value.
fn get_opt_parsed<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
) -> Result<Option<T>, CliError> {
    match opts.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("invalid value {v:?} for --{key}"))),
    }
}

fn require<'m>(opts: &'m HashMap<String, String>, key: &str) -> Result<&'m String, CliError> {
    opts.get(key)
        .ok_or_else(|| CliError::usage(format!("missing --{key}")))
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let ues: usize = get_parsed(opts, "ues", 500)?;
    let hours: f64 = get_parsed(opts, "hours", 1.0)?;
    let start: f64 = get_parsed(opts, "start-hour", 10.0)?;
    let seed: u64 = get_parsed(opts, "seed", 0)?;
    let out = require(opts, "o")?;
    let cfg = SynthConfig::new(ues, seed).hours(hours).starting_at(start);
    let device = opts.get("device").map(String::as_str).unwrap_or("mixed");
    if is_ctb(out) && device == "mixed" {
        // Streams go straight from the simulator to the columnar writer,
        // chunk by chunk — the trace is never resident in RAM, so
        // multi-GB traces fit on any machine.
        let summary = generate_ctb(&cfg, out)?;
        println!(
            "wrote {} ({} streams, {} events, {} blocks, {} bytes)",
            out, summary.streams, summary.events, summary.blocks, summary.bytes
        );
        return Ok(());
    }
    let dataset = if device == "mixed" {
        synth_generate(&cfg)
    } else {
        let dt: DeviceType = device
            .parse()
            .map_err(|e| CliError::usage(format!("{e}")))?;
        generate_device(&cfg, dt, ues)
    };
    if is_ctb(out) {
        let summary = write_ctb(&dataset, out)?;
        println!(
            "wrote {} ({} streams, {} events, {} blocks, {} bytes)",
            out, summary.streams, summary.events, summary.blocks, summary.bytes
        );
    } else {
        trace_io::write_dataset(&dataset, out)?;
        println!("wrote {} ({})", out, dataset.summary());
    }
    Ok(())
}

/// Writes the model bundle atomically (crash mid-save cannot leave a torn
/// file) and checksum-stamped, so `load_model_file` and the serve-side
/// registry can verify the weights byte-for-byte.
fn write_model(model: &CptGpt, out: &str) -> Result<(), CliError> {
    cpt::gpt::save_model_file(model, std::path::Path::new(out))
        .map_err(|e| CliError::data(e.to_string()))
}

fn report_outcome(report: &cpt::gpt::TrainReport) {
    println!(
        "trained {} epochs in {:.1}s (final loss {:.4})",
        report.epochs.len(),
        report.total_seconds,
        report.final_loss()
    );
    if !report.recoveries.is_empty() {
        println!(
            "watchdog recovered {} time(s); last lr scale {:.4}",
            report.recoveries.len(),
            report.recoveries.last().map(|r| r.lr_scale).unwrap_or(1.0)
        );
    }
    if report.interrupted {
        println!("run was interrupted; resume with --resume to finish");
    }
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let input = require(opts, "input")?;
    let out = require(opts, "o")?;
    let epochs: usize = get_parsed(opts, "epochs", 24)?;
    let lr: f32 = get_parsed(opts, "lr", 6e-3)?;
    let max_len: usize = get_parsed(opts, "max-len", 128)?;
    let d_model: usize = get_parsed(opts, "d-model", 48)?;
    let seed: u64 = get_parsed(opts, "seed", 0)?;
    let microbatch: usize = get_parsed(opts, "microbatch", 8)?;
    let ckpt_every: usize = get_parsed(opts, "checkpoint-every", 1)?;
    let ckpt_spec = opts
        .get("checkpoint")
        .filter(|p| !p.is_empty())
        .map(|p| CheckpointSpec::every(p, ckpt_every));
    let resume = opts.contains_key("resume");
    // Validate --threads before the (slow) data load so usage errors are
    // instant and exit 2. Training is bit-identical at any thread count
    // (fixed-order gradient reduction), so clamping only affects speed.
    let threads = get_opt_parsed::<usize>(opts, "threads")?
        .map(|n| resolve_parallelism(Some(n), "--threads"))
        .transpose()?;
    let pool = match &threads {
        None => None,
        Some(par) => {
            if let Some(from) = par.clamped_from {
                eprintln!(
                    "warning: --threads {from} exceeds available cores; using {}",
                    par.threads
                );
            }
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(par.threads)
                    .build()
                    .map_err(|e| CliError::data(format!("cannot build thread pool: {e}")))?,
            )
        }
    };

    let cfg = TrainConfig {
        epochs,
        lr,
        seed,
        microbatch,
        ..TrainConfig::quick()
    };

    if is_ctb(input) {
        // Out-of-core path: the trace stays on disk (mmap'd); the
        // tokenizer fit streams over it and training materializes only
        // one optimizer step's streams at a time. Weights are
        // bit-identical to the in-RAM path on the same data
        // (DESIGN.md §17).
        let reader = ColumnarReader::open(input)?;
        let source = ColumnarSource::new(&reader)?;
        if resume {
            let spec = ckpt_spec
                .ok_or_else(|| CliError::usage("--resume requires --checkpoint CKPT.json"))?;
            println!(
                "resuming from {} on {} ({} streams, {} events, out-of-core)",
                spec.path.display(),
                input,
                reader.num_streams(),
                reader.num_events()
            );
            let (model, report) = match &pool {
                Some(p) => p.install(|| resume_training_source(&source, &cfg, &spec))?,
                None => resume_training_source(&source, &cfg, &spec)?,
            };
            report_outcome(&report);
            write_model(&model, out)?;
            println!("wrote {out}");
            return Ok(());
        }
        println!(
            "training out-of-core on {} ({} streams, {} events, {})",
            input,
            reader.num_streams(),
            reader.num_events(),
            if reader.is_mapped() {
                "mmap'd"
            } else {
                "buffered"
            }
        );
        let mut config = CptGptConfig {
            generation: reader.generation(),
            d_model,
            d_mlp: d_model * 4,
            d_head: d_model,
            max_len,
            ..CptGptConfig::small()
        };
        config.seed = seed;
        let tokenizer = fit_tokenizer_streaming(&reader, max_len, ScaleKind::default());
        let mut model = CptGpt::new(config, tokenizer);
        println!("model: {} parameters", model.num_params());
        let report = match &pool {
            Some(p) => p.install(|| {
                train_source_with_checkpoints(&mut model, &source, &cfg, ckpt_spec.as_ref())
            })?,
            None => train_source_with_checkpoints(&mut model, &source, &cfg, ckpt_spec.as_ref())?,
        };
        report_outcome(&report);
        write_model(&model, out)?;
        println!("wrote {out}");
        return Ok(());
    }

    let data = trace_io::read_dataset(input)?;
    let data = data.clamp_lengths(2, max_len + 1);

    if resume {
        let spec = ckpt_spec
            .ok_or_else(|| CliError::usage("--resume requires --checkpoint CKPT.json"))?;
        println!("resuming from {} on {}", spec.path.display(), data.summary());
        let (model, report) = match &pool {
            Some(p) => p.install(|| resume_training(&data, &cfg, &spec))?,
            None => resume_training(&data, &cfg, &spec)?,
        };
        report_outcome(&report);
        write_model(&model, out)?;
        println!("wrote {out}");
        return Ok(());
    }

    println!("training on {}", data.summary());
    let mut config = CptGptConfig {
        generation: data.generation,
        d_model,
        d_mlp: d_model * 4,
        d_head: d_model,
        max_len,
        ..CptGptConfig::small()
    };
    config.seed = seed;
    let tokenizer = Tokenizer::fit(&data);
    let mut model = CptGpt::new(config, tokenizer);
    println!("model: {} parameters", model.num_params());
    let report = match &pool {
        Some(p) => p.install(|| train_with_checkpoints(&mut model, &data, &cfg, ckpt_spec.as_ref()))?,
        None => train_with_checkpoints(&mut model, &data, &cfg, ckpt_spec.as_ref())?,
    };
    report_outcome(&report);
    write_model(&model, out)?;
    println!("wrote {out}");
    Ok(())
}

fn load_model(path: &str) -> Result<CptGpt, CliError> {
    cpt::gpt::load_model_file(std::path::Path::new(path)).map_err(|e| {
        // Well-formed JSON can still carry garbage weights (NaN from a
        // diverged run, shapes torn by partial edits); that is a bad model
        // (exit 4), not a checkpoint-IO failure.
        let code = match &e {
            cpt::gpt::CheckpointError::Validation { .. } => EXIT_CONFIG,
            _ => EXIT_CHECKPOINT,
        };
        CliError {
            code,
            message: format!("cannot load model {path}: {e}"),
        }
    })
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let model_path = require(opts, "model")?;
    let out = require(opts, "o")?;
    let streams: usize = get_parsed(opts, "streams", 1000)?;
    let seed: u64 = get_parsed(opts, "seed", 0)?;
    // Validate flags before the (slow) model load so usage errors are
    // instant and exit 2.
    let threads = get_opt_parsed::<usize>(opts, "threads")?
        .map(|n| resolve_parallelism(Some(n), "--threads"))
        .transpose()?;
    let device: DeviceType = opts
        .get("device")
        .map(|d| d.parse())
        .transpose()
        .map_err(|e| CliError::usage(format!("{e}")))?
        .unwrap_or(DeviceType::Phone);
    let model = load_model(model_path)?;
    let cfg = GenerateConfig::new(streams, seed).device(device);
    // --threads pins the rayon pool; absent, the global default pool (all
    // cores) is used as before. Zero is a usage error; oversubscription is
    // clamped with a warning — output is identical either way, since
    // generation is deterministic per (model, seed) at any thread count.
    let (synth, counters) = match threads {
        None => model.generate_with_report(&cfg)?,
        Some(par) => {
            if let Some(from) = par.clamped_from {
                eprintln!(
                    "warning: --threads {from} exceeds available cores; using {}",
                    par.threads
                );
            }
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(par.threads)
                .build()
                .map_err(|e| CliError::data(format!("cannot build thread pool: {e}")))?;
            pool.install(|| model.generate_with_report(&cfg))?
        }
    };
    if is_ctb(out) {
        write_ctb(&synth, out)?;
    } else {
        trace_io::write_dataset(&synth, out)?;
    }
    println!("wrote {} ({})", out, synth.summary());
    if !counters.is_clean() {
        println!("generation guardrails intervened: {counters}");
    }
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let model_path = require(opts, "model")?;
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:9000".to_string());
    // Validate flags before the (slow) model load so usage errors are
    // instant and exit 2.
    let par = resolve_parallelism(get_opt_parsed(opts, "workers")?, "--workers")?;
    if let Some(from) = par.clamped_from {
        eprintln!(
            "warning: --workers {from} exceeds available cores; using {}",
            par.threads
        );
    }
    let mut cfg = ServerConfig::new(addr, par.threads);
    cfg.serve.shards = get_parsed(opts, "shards", cfg.serve.shards)?;
    cfg.serve.max_sessions = get_parsed(opts, "max-sessions", cfg.serve.max_sessions)?;
    cfg.serve.queue_capacity = get_parsed(opts, "queue-capacity", cfg.serve.queue_capacity)?;
    cfg.serve.slice_budget = get_parsed(opts, "slice-budget", cfg.serve.slice_budget)?;
    cfg.serve.max_connections =
        get_parsed(opts, "max-connections", cfg.serve.max_connections)?;
    cfg.serve.read_timeout_ms =
        get_parsed(opts, "read-timeout-ms", cfg.serve.read_timeout_ms)?;
    cfg.serve.detach_ttl_secs =
        get_parsed(opts, "detach-ttl-secs", cfg.serve.detach_ttl_secs)?;
    cfg.serve.batch_decode = !opts.contains_key("no-batch-decode");
    cfg.serve.batch_max = get_parsed(opts, "batch-max", cfg.serve.batch_max)?;
    cfg.serve.quantized = opts.contains_key("quantized");
    cfg.serve.validate()?;
    cfg.chaos = ChaosPlan {
        seed: get_parsed(opts, "chaos-seed", 0)?,
        panic_session: get_opt_parsed(opts, "chaos-panic-session")?,
        panic_at_event: get_parsed(opts, "chaos-panic-at-event", 0)?,
        delay_slice_ms: get_parsed(opts, "chaos-delay-ms", 0)?,
        delay_every: get_parsed(opts, "chaos-delay-every", 0)?,
        drop_connection: get_opt_parsed(opts, "chaos-drop-conn")?,
        drop_after_requests: get_parsed(opts, "chaos-drop-after", 0)?,
        corrupt_every: get_parsed(opts, "chaos-corrupt-every", 0)?,
        crash_manifest_commit: get_opt_parsed(opts, "chaos-crash-commit")?,
        corrupt_candidate: get_opt_parsed(opts, "chaos-corrupt-candidate")?,
        panic_finetune: get_opt_parsed(opts, "chaos-panic-finetune")?,
        publish_delay_ms: get_parsed(opts, "chaos-publish-delay-ms", 0)?,
        poison_session: get_opt_parsed(opts, "chaos-poison-session")?,
        poison_at_event: get_parsed(opts, "chaos-poison-at", 0)?,
    };
    cfg.registry = opts
        .get("registry")
        .filter(|p| !p.is_empty())
        .map(std::path::PathBuf::from);
    let model = std::sync::Arc::new(load_model(model_path)?);
    if !cfg.chaos.is_noop() {
        eprintln!("warning: chaos injection enabled: {:?}", cfg.chaos);
    }
    println!(
        "serving {} with {} workers across {} shard{} (cap {} sessions, {} decode{})",
        model_path,
        cfg.serve.workers,
        cfg.serve.shards,
        if cfg.serve.shards == 1 { "" } else { "s" },
        cfg.serve.max_sessions,
        if cfg.serve.batch_decode {
            "batched"
        } else {
            "sequential"
        },
        if cfg.serve.quantized {
            ", int8 weights"
        } else {
            ""
        }
    );
    let has_registry = cfg.registry.is_some();
    if let Some(root) = &cfg.registry {
        println!("model registry at {}", root.display());
    }
    let stats = cpt::serve::serve(model, cfg, |addr| {
        // The readiness line scripts grep for; flush because stdout is
        // block-buffered when piped to a log file.
        println!("listening on {addr}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    })?;
    println!(
        "serve done: {} sessions opened, {} shed, {} closed; {} events generated \
         ({:.0}/s), slice p50 {} us p99 {} us",
        stats.sessions_opened,
        stats.sessions_shed,
        stats.sessions_closed,
        stats.events_generated,
        stats.events_per_sec,
        stats.slice_p50_us,
        stats.slice_p99_us
    );
    if stats.worker_panics > 0 || stats.sessions_failed > 0 {
        println!(
            "  contained faults: {} worker panics, {} sessions failed \
             ({} force-failed by drain), {} detached / {} reattached / {} expired",
            stats.worker_panics,
            stats.sessions_failed,
            stats.sessions_force_failed,
            stats.sessions_detached,
            stats.sessions_reattached,
            stats.sessions_expired
        );
    }
    if has_registry {
        println!(
            "  model lifecycle: live v{}; {} published / {} rolled back / \
             {} quarantined / {} retired; {} divergence trips; \
             finetunes {} completed / {} failed",
            stats.live_version,
            stats.versions_published,
            stats.versions_rolled_back,
            stats.versions_quarantined,
            stats.versions_retired,
            stats.divergence_trips,
            stats.finetunes_completed,
            stats.finetunes_failed
        );
    }
    Ok(())
}

fn cmd_loadgen(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let addr = require(opts, "addr")?;
    let mut cfg = LoadgenConfig::new(addr);
    cfg.sessions = get_parsed(opts, "sessions", cfg.sessions)?;
    cfg.concurrent = get_parsed(opts, "concurrent", cfg.concurrent)?;
    cfg.rate = get_parsed(opts, "rate", cfg.rate)?;
    cfg.streams = get_parsed(opts, "streams", cfg.streams)?;
    cfg.seed_base = get_parsed(opts, "seed", cfg.seed_base)?;
    cfg.shutdown = opts.contains_key("shutdown");
    cfg.connect_retries = get_parsed(opts, "connect-retries", cfg.connect_retries)?;
    cfg.retry_backoff_ms = get_parsed(opts, "retry-backoff-ms", cfg.retry_backoff_ms)?;
    cfg.reattach = !opts.contains_key("no-reattach");
    if let Some(wire) = opts.get("wire") {
        cfg.wire = wire.parse().map_err(CliError::usage)?;
    }
    let par = resolve_parallelism(
        Some(get_parsed(opts, "threads", cfg.threads)?),
        "--threads",
    )?;
    if let Some(from) = par.clamped_from {
        eprintln!(
            "warning: --threads {from} exceeds available cores; using {}",
            par.threads
        );
    }
    cfg.threads = par.threads;
    if let Some(secs) = get_opt_parsed::<f64>(opts, "duration-secs")? {
        if !secs.is_finite() || secs <= 0.0 {
            return Err(CliError::usage("--duration-secs must be a positive number"));
        }
        cfg.duration = Some(std::time::Duration::from_secs_f64(secs));
    }
    let report = run_loadgen(&cfg)?;
    println!(
        "loadgen: opened {} sessions ({} shed, {} completed), received {} events \
         in {:.1}s ({:.0} events/s)",
        report.sessions_opened,
        report.sessions_shed,
        report.sessions_completed,
        report.events_received,
        report.elapsed_secs,
        report.events_per_sec
    );
    println!(
        "  open latency p50 {} us, p99 {} us; next latency p50 {} us, p99 {} us",
        report.open_p50_us, report.open_p99_us, report.next_p50_us, report.next_p99_us
    );
    println!(
        "  events per session: p50 {}, p99 {}, mean {:.1}, max {}",
        report.events_per_session_p50,
        report.events_per_session_p99,
        report.events_per_session_mean,
        report.events_per_session_max
    );
    println!("  events digest: {}", report.events_digest);
    if report.shards > 1 {
        println!(
            "  server shards: {} (runnable max {} / min {} at close)",
            report.shards, report.shard_runnable_max, report.shard_runnable_min
        );
    }
    if report.connect_retries > 0 || report.open_retries > 0 || report.reconnects > 0 {
        println!(
            "  resilience: {} connect retries, {} shed retries, {} reconnects, \
             {} sessions reattached",
            report.connect_retries,
            report.open_retries,
            report.reconnects,
            report.sessions_reattached
        );
    }
    if report.sessions_failed > 0 {
        println!(
            "  {} sessions ended with a terminal failure record",
            report.sessions_failed
        );
    }
    if report.errors > 0 {
        println!("  {} protocol errors observed", report.errors);
    }
    if let Some(out) = opts.get("o").filter(|p| !p.is_empty()) {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::data(format!("cannot serialize report: {e}")))?;
        std::fs::write(out, json + "\n")
            .map_err(|e| CliError::data(format!("cannot write {out}: {e}")))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// One request/response round-trip against a running server, over a fresh
/// connection (the lifecycle verbs are rare enough that connection reuse
/// buys nothing).
fn ctl_send(
    addr: &str,
    req: &cpt::serve::protocol::Request,
) -> Result<cpt::serve::protocol::Response, CliError> {
    use std::io::{BufRead, BufReader, Write};
    let serve_err = |message: String| CliError {
        code: EXIT_SERVE,
        message,
    };
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| serve_err(format!("cannot connect to {addr}: {e}")))?;
    let mut line = serde_json::to_string(req)
        .map_err(|e| CliError::data(format!("cannot encode request: {e}")))?;
    line.push('\n');
    let mut writer = stream
        .try_clone()
        .map_err(|e| serve_err(format!("cannot clone connection: {e}")))?;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| serve_err(format!("cannot send request: {e}")))?;
    let mut resp = String::new();
    BufReader::new(stream)
        .read_line(&mut resp)
        .map_err(|e| serve_err(format!("cannot read response: {e}")))?;
    if resp.trim().is_empty() {
        return Err(serve_err(format!("server at {addr} closed the connection")));
    }
    serde_json::from_str(&resp)
        .map_err(|e| serve_err(format!("bad response line {resp:?}: {e}")))
}

/// `cptgen ctl` — drive the model-lifecycle verbs of a running server:
/// publish a model file (or an already-staged version), roll back, start
/// a supervised fine-tune (optionally waiting for it), or inspect
/// versions/stats.
fn cmd_ctl(opts: &HashMap<String, String>) -> Result<(), CliError> {
    use cpt::serve::protocol::{Request, Response};
    let addr = require(opts, "addr")?;
    let actions = ["publish", "publish-version", "rollback", "finetune", "versions", "stats"];
    let chosen: Vec<&str> = actions
        .iter()
        .copied()
        .filter(|a| opts.contains_key(*a))
        .collect();
    let action = match chosen.as_slice() {
        [one] => *one,
        [] => {
            return Err(CliError::usage(
                "ctl needs one action: --publish PATH | --publish-version N | \
                 --rollback | --finetune TRACE | --versions | --stats",
            ))
        }
        many => {
            return Err(CliError::usage(format!(
                "ctl takes exactly one action, got {}",
                many.join(", ")
            )))
        }
    };
    let req = match action {
        "publish" => {
            let path = require(opts, "publish")?;
            if path.is_empty() {
                return Err(CliError::usage("--publish needs a model file path"));
            }
            Request::Publish {
                path: Some(path.clone()),
                version: None,
            }
        }
        "publish-version" => Request::Publish {
            path: None,
            version: Some(get_parsed(opts, "publish-version", 0)?),
        },
        "rollback" => Request::Rollback,
        "finetune" => {
            let trace = require(opts, "finetune")?;
            if trace.is_empty() {
                return Err(CliError::usage("--finetune needs a trace file path"));
            }
            Request::Finetune {
                trace: trace.clone(),
                epochs: get_opt_parsed(opts, "epochs")?,
                seed: get_opt_parsed(opts, "seed")?,
            }
        }
        "versions" => Request::Versions,
        _ => Request::Stats,
    };
    let resp = ctl_send(addr, &req)?;
    match &resp {
        Response::Published { version, previous } => match previous {
            Some(p) => println!("published: v{version} is live (displaced v{p})"),
            None => println!("published: v{version} is live"),
        },
        Response::RolledBack { demoted, live } => {
            println!("rolled back: demoted v{demoted}, v{live} is live");
        }
        Response::FinetuneStarted { job } => {
            println!("fine-tune job {job} started");
        }
        Response::Versions {
            live,
            versions,
            last_finetune_error,
        } => {
            match live {
                Some(v) => println!("live: v{v}"),
                None => println!("live: none"),
            }
            for v in versions {
                // Bound to a String so the width specifier actually pads
                // (Display impls that use `write_str` ignore it).
                let state = v.state.to_string();
                println!(
                    "  v{:<4} {:<11} {:>4} sessions  {}",
                    v.id, state, v.sessions, v.note
                );
            }
            if let Some(err) = last_finetune_error {
                println!("last fine-tune failure: {err}");
            }
        }
        Response::Stats { stats } => {
            println!(
                "live v{}: {} open sessions, {} published / {} rolled back / \
                 {} quarantined, {} divergence trips, finetunes {} running / \
                 {} completed / {} failed",
                stats.live_version,
                stats.sessions_open,
                stats.versions_published,
                stats.versions_rolled_back,
                stats.versions_quarantined,
                stats.divergence_trips,
                stats.finetunes_running,
                stats.finetunes_completed,
                stats.finetunes_failed
            );
        }
        Response::Error { kind, message } => {
            return Err(CliError {
                code: EXIT_SERVE,
                message: format!("server rejected {action}: {kind:?}: {message}"),
            })
        }
        other => {
            return Err(CliError {
                code: EXIT_SERVE,
                message: format!("unexpected response to {action}: {other:?}"),
            })
        }
    }
    let rendered = if matches!(resp, Response::FinetuneStarted { .. }) {
        let wait_secs: u64 = get_parsed(opts, "wait-secs", 0)?;
        if wait_secs > 0 {
            wait_for_finetune(addr, wait_secs)?
        } else {
            resp
        }
    } else {
        resp
    };
    if let Some(out) = opts.get("o").filter(|p| !p.is_empty()) {
        let json = serde_json::to_string_pretty(&rendered)
            .map_err(|e| CliError::data(format!("cannot serialize response: {e}")))?;
        std::fs::write(out, json + "\n")
            .map_err(|e| CliError::data(format!("cannot write {out}: {e}")))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Polls `/stats` until the running fine-tune finishes (or the deadline
/// passes), then reports the outcome via the `versions` verb — a failed
/// job leaves `last_finetune_error` set (only success clears it), which
/// maps to exit 8 so CI can gate on it.
fn wait_for_finetune(
    addr: &str,
    wait_secs: u64,
) -> Result<cpt::serve::protocol::Response, CliError> {
    use cpt::serve::protocol::{Request, Response};
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(wait_secs);
    loop {
        std::thread::sleep(std::time::Duration::from_millis(500));
        let running = match ctl_send(addr, &Request::Stats)? {
            Response::Stats { stats } => stats.finetunes_running > 0,
            other => {
                return Err(CliError {
                    code: EXIT_SERVE,
                    message: format!("unexpected stats response: {other:?}"),
                })
            }
        };
        if !running {
            break;
        }
        if std::time::Instant::now() >= deadline {
            return Err(CliError {
                code: EXIT_SERVE,
                message: format!("fine-tune still running after {wait_secs}s"),
            });
        }
    }
    let resp = ctl_send(addr, &Request::Versions)?;
    if let Response::Versions {
        live,
        last_finetune_error,
        ..
    } = &resp
    {
        if let Some(err) = last_finetune_error {
            return Err(CliError {
                code: EXIT_SERVE,
                message: format!("fine-tune failed: {err}"),
            });
        }
        match live {
            Some(v) => println!("fine-tune complete: v{v} is live"),
            None => println!("fine-tune complete"),
        }
    }
    Ok(resp)
}

/// Folds one evaluate-side trace into a [`StreamAccumulator`], streaming
/// `.ctb` files and loading JSONL (whose reader is line-oriented anyway).
/// Returns the accumulator plus the trace's generation.
fn accumulate_side(
    machine: &StateMachine,
    path: &str,
) -> Result<(StreamAccumulator, Generation), CliError> {
    if is_ctb(path) {
        let reader = ColumnarReader::open(path)?;
        let acc = accumulate_reader(machine, &reader)?;
        Ok((acc, reader.generation()))
    } else {
        let mut sr = trace_io::StreamReader::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| CliError::data(format!("{path}: {e}")))?,
        ))?;
        let mut acc = StreamAccumulator::new();
        while let Some(stream) = sr.next_stream()? {
            acc.observe(machine, &stream);
        }
        Ok((acc, sr.generation()))
    }
}

/// Peeks a trace's generation without reading its body.
fn trace_generation(path: &str) -> Result<Generation, CliError> {
    if is_ctb(path) {
        Ok(ColumnarReader::open(path)?.generation())
    } else {
        let sr = trace_io::StreamReader::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| CliError::data(format!("{path}: {e}")))?,
        ))?;
        Ok(sr.generation())
    }
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let real_path = require(opts, "real")?;
    let synth_path = require(opts, "synth")?;
    if is_ctb(real_path) || is_ctb(synth_path) {
        // Streaming evaluation: both sides fold into accumulators one
        // stream at a time, producing the same FidelityReport bit for bit
        // (proven by cpt-metrics' streaming tests).
        let machine = StateMachine::for_generation(trace_generation(synth_path)?);
        let (real_acc, _) = accumulate_side(&machine, real_path)?;
        let (synth_acc, _) = accumulate_side(&machine, synth_path)?;
        let r = fidelity_from_accumulators(&real_acc, &synth_acc);
        print_fidelity(&r);
        return Ok(());
    }
    let real = trace_io::read_dataset(real_path)?;
    let synth = trace_io::read_dataset(synth_path)?;
    let machine = StateMachine::for_generation(synth.generation);
    let r = FidelityReport::compute(&machine, &real, &synth);
    print_fidelity(&r);
    Ok(())
}

fn print_fidelity(r: &FidelityReport) {
    println!("fidelity of synth vs real:");
    println!("  event violations:      {:.4}%", r.event_violation_rate * 100.0);
    println!("  stream violations:     {:.2}%", r.stream_violation_rate * 100.0);
    println!("  sojourn CONNECTED dist {:.4}", r.sojourn_connected);
    println!("  sojourn IDLE dist      {:.4}", r.sojourn_idle);
    println!("  flow-length dist       {:.4}", r.flow_length_all);
    println!("  max breakdown diff     {:.4}", r.max_breakdown_diff);
}

fn cmd_mcn(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let trace: Dataset = trace_io::read_dataset(require(opts, "input")?)?;
    let workers: usize = get_parsed(opts, "workers", 4)?;
    let cfg = if opts.contains_key("autoscale") {
        McnConfig::autoscaling(workers, 0.6)
    } else {
        McnConfig::fixed(workers)
    };
    let report = simulate(&trace, &cfg);
    println!("MCN load report: {}", report.summary());
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let input = require(opts, "input")?;
    if is_ctb(input) {
        // Single-pass streaming accumulation: the trace never loads whole.
        let reader = ColumnarReader::open(input)?;
        let [phones, cars, tablets] = reader.device_stream_counts();
        println!(
            "{} streams, {} events ({} phones, {} connected cars, {} tablets); \
             {} blocks, {} bytes, {}",
            reader.num_streams(),
            reader.num_events(),
            phones,
            cars,
            tablets,
            reader.num_blocks(),
            reader.file_len(),
            if reader.is_mapped() {
                "mmap'd"
            } else {
                "buffered"
            }
        );
        let machine = StateMachine::for_generation(reader.generation());
        let acc = accumulate_reader(&machine, &reader)?;
        let v = acc.violations();
        println!(
            "semantic violations: {:.4}% of {} events, {:.2}% of {} streams",
            v.event_rate() * 100.0,
            v.events_checked,
            v.stream_rate() * 100.0,
            v.streams_checked
        );
        println!("event-type breakdown:");
        for (et, frac) in acc.breakdown() {
            if frac > 0.0 {
                println!("  {:<12} {:>7.3}%", et.to_string(), frac * 100.0);
            }
        }
        let ecdf = acc.flow_ecdf(FlowLenKind::All);
        if !ecdf.is_empty() {
            println!(
                "flow length: p50 {:.0}, p90 {:.0}, p99 {:.0}, max {:.0}",
                ecdf.quantile(0.5),
                ecdf.quantile(0.9),
                ecdf.quantile(0.99),
                ecdf.quantile(1.0)
            );
        }
        // The pooled interarrival ECDF is O(events) memory by definition;
        // it is deliberately skipped on the out-of-core path.
        return Ok(());
    }
    let trace = trace_io::read_dataset(input)?;
    println!("{}", trace.summary());
    let machine = StateMachine::for_generation(trace.generation);
    let v = cpt::metrics::violation_stats(&machine, &trace);
    println!(
        "semantic violations: {:.4}% of {} events, {:.2}% of {} streams",
        v.event_rate() * 100.0,
        v.events_checked,
        v.stream_rate() * 100.0,
        v.streams_checked
    );
    println!("event-type breakdown:");
    for (et, frac) in trace.event_breakdown() {
        if frac > 0.0 {
            println!("  {:<12} {:>7.3}%", et.to_string(), frac * 100.0);
        }
    }
    let lengths = trace.flow_lengths();
    let ecdf = cpt::trace::stats::Ecdf::new(lengths);
    if !ecdf.is_empty() {
        println!(
            "flow length: p50 {:.0}, p90 {:.0}, p99 {:.0}, max {:.0}",
            ecdf.quantile(0.5),
            ecdf.quantile(0.9),
            ecdf.quantile(0.99),
            ecdf.quantile(1.0)
        );
    }
    let iats = trace.interarrivals();
    if !iats.is_empty() {
        let e = cpt::trace::stats::Ecdf::new(iats);
        println!(
            "interarrival seconds: p50 {:.2}, p90 {:.2}, p99 {:.2}",
            e.quantile(0.5),
            e.quantile(0.9),
            e.quantile(0.99)
        );
    }
    Ok(())
}

/// Measures end-to-end throughput (kernel GFLOP/s, training tokens/s,
/// generation streams/s + tokens/s, peak RSS), writes the JSON report, and
/// optionally gates against a committed baseline. CI runs
/// `bench --quick --check BENCH_baseline.json` so a >2× throughput drop
/// fails the build instead of landing silently.
fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let quick = opts.contains_key("quick");
    let out = opts
        .get("o")
        .map(String::as_str)
        .unwrap_or("BENCH_throughput.json");
    let max_regression: f64 = get_parsed(opts, "max-regression", 2.0)?;
    if max_regression.is_nan() || max_regression < 1.0 {
        return Err(CliError::usage("--max-regression must be >= 1.0"));
    }
    let min_train_speedup: Option<f64> = get_opt_parsed(opts, "min-train-speedup")?;
    if let Some(f) = min_train_speedup {
        if !f.is_finite() || f <= 0.0 {
            return Err(CliError::usage(
                "--min-train-speedup must be finite and positive",
            ));
        }
    }
    let min_serve_speedup: Option<f64> = get_opt_parsed(opts, "min-serve-speedup")?;
    if let Some(f) = min_serve_speedup {
        if !f.is_finite() || f <= 0.0 {
            return Err(CliError::usage(
                "--min-serve-speedup must be finite and positive",
            ));
        }
    }
    let min_shard_speedup: Option<f64> = get_opt_parsed(opts, "min-shard-speedup")?;
    if let Some(f) = min_shard_speedup {
        if !f.is_finite() || f <= 0.0 {
            return Err(CliError::usage(
                "--min-shard-speedup must be finite and positive",
            ));
        }
    }

    println!(
        "measuring throughput ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = cpt::bench::throughput::measure(quick).map_err(|e| match e {
        // Reuse the train-error exit mapping (divergence → 5, etc.).
        cpt::bench::throughput::MeasureError::Train(t) => CliError::from(t),
        g @ (cpt::bench::throughput::MeasureError::Generate(_)
        | cpt::bench::throughput::MeasureError::Serve(_)
        | cpt::bench::throughput::MeasureError::Pool(_)) => {
            CliError::data(format!("throughput measurement failed: {g}"))
        }
    })?;
    println!("  threads:  {}", report.threads);
    println!("  matmul:   {:.2} GFLOP/s", report.matmul_gflops);
    println!(
        "  train:    {:.0} tokens/s ({} threads), {:.0} tokens/s (1 thread), {:.2}x speedup",
        report.train_tokens_per_sec, report.threads, report.train_tokens_per_sec_1thread,
        report.train_speedup
    );
    println!(
        "  generate: {:.1} streams/s, {:.0} tokens/s",
        report.generate_streams_per_sec, report.generate_tokens_per_sec
    );
    println!(
        "  serve:    {:.0} tokens/s batched ({:.1} sessions/s), \
         {:.0} tokens/s sequential, {:.2}x speedup; {:.0} tokens/s int8",
        report.serve_tokens_per_sec,
        report.serve_sessions_per_sec,
        report.serve_tokens_per_sec_sequential,
        report.serve_speedup,
        report.serve_tokens_per_sec_quantized
    );
    println!(
        "  sharded:  {:.1} sessions/s at 8 shards, {:.2}x vs 1 shard",
        report.serve_sessions_per_sec_sharded, report.shard_speedup
    );
    println!(
        "  swap:     {:.0} tokens/s under a mid-run publish",
        report.serve_tokens_per_sec_swap
    );
    println!(
        "  peak RSS: {:.1} MiB",
        report.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );

    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError::data(format!("cannot serialize report: {e}")))?;
    std::fs::write(out, json + "\n")
        .map_err(|e| CliError::data(format!("cannot write {out}: {e}")))?;
    println!("wrote {out}");

    if let Some(baseline_path) = opts.get("check").filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| CliError::data(format!("cannot read baseline {baseline_path}: {e}")))?;
        let baseline: cpt::bench::throughput::ThroughputReport = serde_json::from_str(&text)
            .map_err(|e| CliError::data(format!("bad baseline {baseline_path}: {e}")))?;
        let failures =
            cpt::bench::throughput::check_regression(&report, &baseline, max_regression);
        if !failures.is_empty() {
            return Err(CliError {
                code: EXIT_REGRESSION,
                message: format!(
                    "throughput regression vs {baseline_path}:\n  {}",
                    failures.join("\n  ")
                ),
            });
        }
        println!("within {max_regression}x of baseline {baseline_path}");
    }
    if let Some(min) = min_train_speedup {
        // A 1-core runner cannot demonstrate any data-parallel speedup;
        // gating there would only measure scheduler noise.
        if report.threads <= 1 {
            println!(
                "train-speedup gate skipped: only {} thread available",
                report.threads
            );
        } else if report.train_speedup < min {
            return Err(CliError {
                code: EXIT_REGRESSION,
                message: format!(
                    "train speedup {:.2}x at {} threads is below the required {min}x",
                    report.train_speedup, report.threads
                ),
            });
        } else {
            println!(
                "train speedup {:.2}x at {} threads meets the required {min}x",
                report.train_speedup, report.threads
            );
        }
    }
    if let Some(min) = min_serve_speedup {
        // Packing amortization needs real cores to show against the
        // already-parallel sequential path; a small runner would gate on
        // scheduler noise (acceptance measures at >= 4 cores).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 4 {
            println!("serve-speedup gate skipped: only {cores} cores available");
        } else if report.serve_speedup < min {
            return Err(CliError {
                code: EXIT_REGRESSION,
                message: format!(
                    "serve speedup {:.2}x (batched vs sequential) on {cores} cores \
                     is below the required {min}x",
                    report.serve_speedup
                ),
            });
        } else {
            println!(
                "serve speedup {:.2}x on {cores} cores meets the required {min}x",
                report.serve_speedup
            );
        }
    }
    if let Some(min) = min_shard_speedup {
        // Sharding removes cross-thread lock contention; a small runner
        // has no real contention to remove, so gating there would only
        // measure scheduler noise (acceptance measures at >= 4 cores).
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 4 {
            println!("shard-speedup gate skipped: only {cores} cores available");
        } else if report.shard_speedup < min {
            return Err(CliError {
                code: EXIT_REGRESSION,
                message: format!(
                    "shard speedup {:.2}x (8 shards vs 1) on {cores} cores \
                     is below the required {min}x",
                    report.shard_speedup
                ),
            });
        } else {
            println!(
                "shard speedup {:.2}x on {cores} cores meets the required {min}x",
                report.shard_speedup
            );
        }
    }
    Ok(())
}

/// `cptgen trace` — columnar-trace tooling: lossless JSONL↔`.ctb`
/// conversion (both directions stream record by record; neither ever
/// holds the full trace), header inspection, and full checksum
/// verification.
fn cmd_trace(action: &str, opts: &HashMap<String, String>) -> Result<(), CliError> {
    match action {
        "convert" => {
            let input = require(opts, "input")?;
            let out = require(opts, "o")?;
            match (is_ctb(input), is_ctb(out)) {
                (false, true) => {
                    let mut sr = trace_io::StreamReader::new(std::io::BufReader::new(
                        std::fs::File::open(input)
                            .map_err(|e| CliError::data(format!("{input}: {e}")))?,
                    ))?;
                    let mut w = ColumnarWriter::create(out, sr.generation())?;
                    while let Some(stream) = sr.next_stream()? {
                        w.push_stream(&stream)?;
                    }
                    let summary = w.finish()?;
                    println!(
                        "wrote {} ({} streams, {} events, {} blocks, {} bytes)",
                        out, summary.streams, summary.events, summary.blocks, summary.bytes
                    );
                }
                (true, false) => {
                    let reader = ColumnarReader::open(input)?;
                    reader.verify()?;
                    let mut w = trace_io::StreamWriter::create(
                        out,
                        reader.generation(),
                        reader.num_streams(),
                    )?;
                    for view in reader.streams() {
                        w.push(&view.to_stream()?)?;
                    }
                    w.finish()?;
                    println!("wrote {} ({} streams)", out, reader.num_streams());
                }
                _ => {
                    return Err(CliError::usage(
                        "trace convert goes between formats: exactly one of \
                         --input/-o must end in .ctb",
                    ))
                }
            }
        }
        "info" => {
            let input = require(opts, "input")?;
            if !is_ctb(input) {
                return Err(CliError::usage("trace info expects a .ctb file"));
            }
            let reader = ColumnarReader::open(input)?;
            let [phones, cars, tablets] = reader.device_stream_counts();
            println!("{input}: cpt-ctb v1, {:?}", reader.generation());
            println!(
                "  {} streams ({} phones, {} connected cars, {} tablets)",
                reader.num_streams(),
                phones,
                cars,
                tablets
            );
            println!(
                "  {} events in {} blocks, {} bytes, {}",
                reader.num_events(),
                reader.num_blocks(),
                reader.file_len(),
                if reader.is_mapped() {
                    "mmap'd"
                } else {
                    "buffered"
                }
            );
        }
        "verify" => {
            let input = require(opts, "input")?;
            if !is_ctb(input) {
                return Err(CliError::usage("trace verify expects a .ctb file"));
            }
            let reader = ColumnarReader::open(input)?;
            reader.verify()?;
            println!(
                "ok: {} blocks verified ({} streams, {} events)",
                reader.num_blocks(),
                reader.num_streams(),
                reader.num_events()
            );
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown trace action {other:?}; expected convert | info | verify"
            )))
        }
    }
    Ok(())
}

fn cmd_dot(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let machine = match opts.get("generation").map(String::as_str) {
        None | Some("4g") | Some("lte") => StateMachine::lte(),
        Some("5g") | Some("nr") => StateMachine::nr(),
        Some(other) => return Err(CliError::usage(format!("unknown generation {other:?}"))),
    };
    print!("{}", cpt::statemachine::to_dot(&machine));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    if command == "trace" {
        // `trace` takes an action word before its options.
        let Some(action) = args.get(1).filter(|a| !a.starts_with('-')).cloned() else {
            eprintln!("error: trace needs an action: convert | info | verify");
            return usage();
        };
        let opts = match parse_args(&args[2..]) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        return match cmd_trace(&action, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {}", e.message);
                ExitCode::from(e.code)
            }
        };
    }
    let opts = match parse_args(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&opts),
        "train" => cmd_train(&opts),
        "generate" => cmd_generate(&opts),
        "serve" => cmd_serve(&opts),
        "ctl" => cmd_ctl(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "mcn" => cmd_mcn(&opts),
        "stats" => cmd_stats(&opts),
        "bench" => cmd_bench(&opts),
        "dot" => cmd_dot(&opts),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}", e = e.message);
            ExitCode::from(e.code)
        }
    }
}
