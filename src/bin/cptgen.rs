//! `cptgen` — command-line front end for the CPT-GPT workspace.
//!
//! ```text
//! cptgen simulate --ues 500 --device phone --hours 1 --seed 42 -o real.jsonl
//! cptgen train    --input real.jsonl --epochs 24 -o model.json
//! cptgen generate --model model.json --streams 1000 --seed 7 -o synth.jsonl
//! cptgen evaluate --real real.jsonl --synth synth.jsonl
//! cptgen mcn      --input synth.jsonl --workers 4
//! cptgen stats    --input real.jsonl
//! cptgen dot      [--generation 4g|5g]
//! ```
//!
//! The file formats are the workspace's own: JSON-lines datasets
//! (`cpt-trace::io`) and JSON model bundles (config + tokenizer + weights
//! + initial-event distribution).

use cpt::gpt::{train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::mcn::{simulate, McnConfig};
use cpt::metrics::FidelityReport;
use cpt::statemachine::StateMachine;
use cpt::synth::{generate as synth_generate, generate_device, SynthConfig};
use cpt::trace::{io as trace_io, Dataset, DeviceType};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cptgen <command> [options]\n\
         \n\
         commands:\n\
           simulate   --ues N [--device phone|connected_car|tablet|mixed]\n\
         \u{20}            [--hours H] [--start-hour H] [--seed S] -o OUT.jsonl\n\
           train      --input TRACE.jsonl [--epochs N] [--lr LR] [--max-len L]\n\
         \u{20}            [--d-model D] [--seed S] -o MODEL.json\n\
           generate   --model MODEL.json --streams N [--device D] [--seed S]\n\
         \u{20}            -o OUT.jsonl\n\
           evaluate   --real REAL.jsonl --synth SYNTH.jsonl\n\
           mcn        --input TRACE.jsonl [--workers N] [--autoscale]\n\
           stats      --input TRACE.jsonl\n\
           dot        [--generation 4g|5g]   (Graphviz of the UE state machine)\n"
    );
    ExitCode::from(2)
}

/// Minimal `--key value` / `--flag` argument parser.
fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| args[i].strip_prefix("-"))
            .ok_or_else(|| format!("expected option, found {:?}", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with('-') {
            map.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            map.insert(key.to_string(), String::new());
            i += 1;
        }
    }
    Ok(map)
}

fn get_parsed<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value {v:?} for --{key}")),
    }
}

fn require<'m>(opts: &'m HashMap<String, String>, key: &str) -> Result<&'m String, String> {
    opts.get(key).ok_or_else(|| format!("missing --{key}"))
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let ues: usize = get_parsed(opts, "ues", 500)?;
    let hours: f64 = get_parsed(opts, "hours", 1.0)?;
    let start: f64 = get_parsed(opts, "start-hour", 10.0)?;
    let seed: u64 = get_parsed(opts, "seed", 0)?;
    let out = require(opts, "o")?;
    let cfg = SynthConfig::new(ues, seed).hours(hours).starting_at(start);
    let device = opts.get("device").map(String::as_str).unwrap_or("mixed");
    let dataset = if device == "mixed" {
        synth_generate(&cfg)
    } else {
        let dt: DeviceType = device.parse().map_err(|e| format!("{e}"))?;
        generate_device(&cfg, dt, ues)
    };
    trace_io::write_dataset(&dataset, out).map_err(|e| e.to_string())?;
    println!("wrote {} ({})", out, dataset.summary());
    Ok(())
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = require(opts, "input")?;
    let out = require(opts, "o")?;
    let epochs: usize = get_parsed(opts, "epochs", 24)?;
    let lr: f32 = get_parsed(opts, "lr", 6e-3)?;
    let max_len: usize = get_parsed(opts, "max-len", 128)?;
    let d_model: usize = get_parsed(opts, "d-model", 48)?;
    let seed: u64 = get_parsed(opts, "seed", 0)?;

    let data = trace_io::read_dataset(input).map_err(|e| e.to_string())?;
    let data = data.clamp_lengths(2, max_len + 1);
    println!("training on {}", data.summary());
    let mut config = CptGptConfig {
        generation: data.generation,
        d_model,
        d_mlp: d_model * 4,
        d_head: d_model,
        max_len,
        ..CptGptConfig::small()
    };
    config.seed = seed;
    let tokenizer = Tokenizer::fit(&data);
    let mut model = CptGpt::new(config, tokenizer);
    println!("model: {} parameters", model.num_params());
    let report = train(
        &mut model,
        &data,
        &TrainConfig {
            epochs,
            lr,
            seed,
            ..TrainConfig::quick()
        },
    );
    println!(
        "trained {} epochs in {:.1}s (final loss {:.4})",
        report.epochs.len(),
        report.total_seconds,
        report.final_loss()
    );
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    serde_json::to_writer(std::io::BufWriter::new(file), &model).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn load_model(path: &str) -> Result<CptGpt, String> {
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    serde_json::from_reader(std::io::BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let model = load_model(require(opts, "model")?)?;
    let out = require(opts, "o")?;
    let streams: usize = get_parsed(opts, "streams", 1000)?;
    let seed: u64 = get_parsed(opts, "seed", 0)?;
    let device: DeviceType = opts
        .get("device")
        .map(|d| d.parse())
        .transpose()
        .map_err(|e| format!("{e}"))?
        .unwrap_or(DeviceType::Phone);
    let synth = model.generate(&GenerateConfig::new(streams, seed).device(device));
    trace_io::write_dataset(&synth, out).map_err(|e| e.to_string())?;
    println!("wrote {} ({})", out, synth.summary());
    Ok(())
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let real = trace_io::read_dataset(require(opts, "real")?).map_err(|e| e.to_string())?;
    let synth = trace_io::read_dataset(require(opts, "synth")?).map_err(|e| e.to_string())?;
    let machine = StateMachine::for_generation(synth.generation);
    let r = FidelityReport::compute(&machine, &real, &synth);
    println!("fidelity of synth vs real:");
    println!("  event violations:      {:.4}%", r.event_violation_rate * 100.0);
    println!("  stream violations:     {:.2}%", r.stream_violation_rate * 100.0);
    println!("  sojourn CONNECTED dist {:.4}", r.sojourn_connected);
    println!("  sojourn IDLE dist      {:.4}", r.sojourn_idle);
    println!("  flow-length dist       {:.4}", r.flow_length_all);
    println!("  max breakdown diff     {:.4}", r.max_breakdown_diff);
    Ok(())
}

fn cmd_mcn(opts: &HashMap<String, String>) -> Result<(), String> {
    let trace: Dataset =
        trace_io::read_dataset(require(opts, "input")?).map_err(|e| e.to_string())?;
    let workers: usize = get_parsed(opts, "workers", 4)?;
    let cfg = if opts.contains_key("autoscale") {
        McnConfig::autoscaling(workers, 0.6)
    } else {
        McnConfig::fixed(workers)
    };
    let report = simulate(&trace, &cfg);
    println!("MCN load report: {}", report.summary());
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let trace = trace_io::read_dataset(require(opts, "input")?).map_err(|e| e.to_string())?;
    println!("{}", trace.summary());
    let machine = StateMachine::for_generation(trace.generation);
    let v = cpt::metrics::violation_stats(&machine, &trace);
    println!(
        "semantic violations: {:.4}% of {} events, {:.2}% of {} streams",
        v.event_rate() * 100.0,
        v.events_checked,
        v.stream_rate() * 100.0,
        v.streams_checked
    );
    println!("event-type breakdown:");
    for (et, frac) in trace.event_breakdown() {
        if frac > 0.0 {
            println!("  {:<12} {:>7.3}%", et.to_string(), frac * 100.0);
        }
    }
    let lengths = trace.flow_lengths();
    let ecdf = cpt::trace::stats::Ecdf::new(lengths);
    if !ecdf.is_empty() {
        println!(
            "flow length: p50 {:.0}, p90 {:.0}, p99 {:.0}, max {:.0}",
            ecdf.quantile(0.5),
            ecdf.quantile(0.9),
            ecdf.quantile(0.99),
            ecdf.quantile(1.0)
        );
    }
    let iats = trace.interarrivals();
    if !iats.is_empty() {
        let e = cpt::trace::stats::Ecdf::new(iats);
        println!(
            "interarrival seconds: p50 {:.2}, p90 {:.2}, p99 {:.2}",
            e.quantile(0.5),
            e.quantile(0.9),
            e.quantile(0.99)
        );
    }
    Ok(())
}

fn cmd_dot(opts: &HashMap<String, String>) -> Result<(), String> {
    let machine = match opts.get("generation").map(String::as_str) {
        None | Some("4g") | Some("lte") => StateMachine::lte(),
        Some("5g") | Some("nr") => StateMachine::nr(),
        Some(other) => return Err(format!("unknown generation {other:?}")),
    };
    print!("{}", cpt::statemachine::to_dot(&machine));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let opts = match parse_args(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&opts),
        "train" => cmd_train(&opts),
        "generate" => cmd_generate(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "mcn" => cmd_mcn(&opts),
        "stats" => cmd_stats(&opts),
        "dot" => cmd_dot(&opts),
        "--help" | "-h" | "help" => return usage(),
        other => {
            eprintln!("unknown command {other:?}");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
