//! Umbrella crate re-exporting the CPT-GPT reproduction workspace.
//!
//! See the individual crates for details:
//! - [`trace`] — data model for control-plane traffic traces
//! - [`statemachine`] — 3GPP two-level UE state machines
//! - [`synth`] — ground-truth trace simulator
//! - [`nn`] — tensor/autodiff substrate
//! - [`gpt`] — the CPT-GPT model (the paper's contribution)
//! - [`netshare`] — adapted NetShare GAN/LSTM baseline
//! - [`smm`] — Semi-Markov-model baselines
//! - [`metrics`] — fidelity metrics
//! - [`mcn`] — downstream MCN load simulator (the §2.2 use case)
//! - [`bench`] — experiment + throughput-measurement harness
//! - [`serve`] — streaming multi-UE generation service (continuous
//!   batching, backpressure, load generator)

pub use cpt_bench as bench;
pub use cpt_gpt as gpt;
pub use cpt_mcn as mcn;
pub use cpt_metrics as metrics;
pub use cpt_netshare as netshare;
pub use cpt_nn as nn;
pub use cpt_serve as serve;
pub use cpt_smm as smm;
pub use cpt_statemachine as statemachine;
pub use cpt_synth as synth;
pub use cpt_trace as trace;
